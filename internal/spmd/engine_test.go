package spmd

// Differential tests of the compiled execution engine against the
// tree-walking interpreter: the two engines must be byte-identical on
// every observable — global array contents (bit-for-bit), the machine's
// virtual clocks (total, per-rank busy/idle/flops), and per-rank message
// and byte counters.  The corpus covers every shipped testdata program
// plus inline programs exercising reductions, interprocedural calls,
// data-dependent conditionals (the clamp-disabling case), wavefront
// pipelining, and replicated broadcast reads.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dhpf/internal/mpsim"
)

// engineCorpus lists inline differential sources by name.
var engineCorpus = map[string]string{
	"stencil2d": `
program det
param N = 32
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs
subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      a(i,j) = 1.0 * i + j
    enddo
  enddo
  do j = 1, N-2
    do i = 1, N-2
      b(i,j) = a(i,j-1) + a(i,j+1)
    enddo
  enddo
end
`,
	"reduction": reductionSrc,
	"interprocedural": `
program interp
param N = 16
!hpf$ processors procs(2, 2)
!hpf$ template tm(N, N, N)
!hpf$ align w with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine scale_line(v, jj, kk)
  real v(0:N-1, 0:N-1, 0:N-1)
  do i = 0, N-1
    v(i, jj, kk) = v(i, jj, kk) * 2.0 + 1.0
  enddo
end

subroutine main()
  real w(0:N-1, 0:N-1, 0:N-1)
  do k = 0, N-1
    do j = 0, N-1
      do i = 0, N-1
        w(i,j,k) = 0.01 * i + 0.1 * j + k
      enddo
    enddo
  enddo
  do k = 0, N-1
    do j = 0, N-1
      call scale_line(w, j, k)
    enddo
  enddo
end
`,
	"nested-if": `
program nif
param N = 24
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    if (i < N-4) then
      if (i > 3) then
        a(i) = sin(0.3 * i)
      else
        a(i) = 1.0
      endif
    else
      a(i) = 2.0
    endif
  enddo
end
`,
	"uniform-if": `
program uif
param N = 24
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    if (i /= 7) then
      a(i) = 0.5 * i
    else
      a(i) = -1.0
    endif
  enddo
end
`,
	"wavefront": `
program wf
param N = 32
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs
subroutine main()
  real b(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      b(i,j) = 0.1 * i + j
    enddo
  enddo
  do j = 1, N-1
    do i = 1, N-1
      b(i,j) = b(i,j) + 0.5 * b(i-1,j-1)
    enddo
  enddo
end
`,
	"broadcast": `
program bc
param N = 16
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
!hpf$ distribute b(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  do i = 0, N-1
    a(i) = 0.5 * i
  enddo
  do i = 0, N-1
    b(i) = a(9)
  enddo
end
`,
}

// requireEnginesIdentical executes prog under both engines and fails the
// test on any bit-level difference in results or machine state.
func requireEnginesIdentical(t *testing.T, prog *Program, cfg mpsim.Config) {
	t.Helper()
	ri, erri := prog.ExecuteEngine(cfg, EngineInterp)
	rc, errc := prog.ExecuteEngine(cfg, EngineCompiled)
	if errors.Is(erri, mpsim.ErrWallLimit) || errors.Is(errc, mpsim.ErrWallLimit) {
		// Wall-limit aborts fire at nondeterministic points (some
		// configurations genuinely deadlock — e.g. ysolve with
		// availability analysis disabled, identically in both engines);
		// there is nothing deterministic to compare.
		t.Skipf("wall limit hit (interp err=%v, compiled err=%v)", erri, errc)
	}
	if (erri == nil) != (errc == nil) {
		t.Fatalf("engines disagree on success: interp err=%v, compiled err=%v", erri, errc)
	}
	if erri != nil {
		return
	}
	mi, mc := ri.Machine, rc.Machine
	if math.Float64bits(mi.Time) != math.Float64bits(mc.Time) {
		t.Fatalf("virtual time differs: interp %v, compiled %v", mi.Time, mc.Time)
	}
	if mi.TotalMessages() != mc.TotalMessages() || mi.TotalBytes() != mc.TotalBytes() {
		t.Fatalf("traffic differs: interp %d msgs/%d bytes, compiled %d msgs/%d bytes",
			mi.TotalMessages(), mi.TotalBytes(), mc.TotalMessages(), mc.TotalBytes())
	}
	for r := range mi.RankTime {
		if math.Float64bits(mi.RankTime[r]) != math.Float64bits(mc.RankTime[r]) {
			t.Fatalf("rank %d clock differs: %v vs %v", r, mi.RankTime[r], mc.RankTime[r])
		}
		if math.Float64bits(mi.RankIdle[r]) != math.Float64bits(mc.RankIdle[r]) {
			t.Fatalf("rank %d idle differs: %v vs %v", r, mi.RankIdle[r], mc.RankIdle[r])
		}
		if math.Float64bits(mi.RankFlops[r]) != math.Float64bits(mc.RankFlops[r]) {
			t.Fatalf("rank %d flops differ: %v vs %v", r, mi.RankFlops[r], mc.RankFlops[r])
		}
		if mi.SentMsgs[r] != mc.SentMsgs[r] || mi.SentBytes[r] != mc.SentBytes[r] || mi.RecvMsgs[r] != mc.RecvMsgs[r] {
			t.Fatalf("rank %d counters differ: interp %d/%d/%d, compiled %d/%d/%d", r,
				mi.SentMsgs[r], mi.SentBytes[r], mi.RecvMsgs[r],
				mc.SentMsgs[r], mc.SentBytes[r], mc.RecvMsgs[r])
		}
	}
	for _, d := range prog.IR.Main().Decls {
		if d.Rank() == 0 {
			continue
		}
		gi, loI, hiI, errI := ri.Global(d.Name)
		gc, loC, hiC, errC := rc.Global(d.Name)
		if (errI == nil) != (errC == nil) {
			t.Fatalf("%s: Global errors differ: %v vs %v", d.Name, errI, errC)
		}
		if errI != nil {
			continue
		}
		if len(gi) != len(gc) {
			t.Fatalf("%s: lengths differ: %d vs %d", d.Name, len(gi), len(gc))
		}
		for k := range loI {
			if loI[k] != loC[k] || hiI[k] != hiC[k] {
				t.Fatalf("%s: bounds differ", d.Name)
			}
		}
		for k := range gi {
			if math.Float64bits(gi[k]) != math.Float64bits(gc[k]) {
				t.Fatalf("%s[%d]: interp %v (%#x), compiled %v (%#x)",
					d.Name, k, gi[k], math.Float64bits(gi[k]), gc[k], math.Float64bits(gc[k]))
			}
		}
	}
}

// TestEnginesByteIdenticalInline runs the inline differential corpus.
func TestEnginesByteIdenticalInline(t *testing.T) {
	for name, src := range engineCorpus {
		t.Run(name, func(t *testing.T) {
			prog, err := CompileSource(src, nil, DefaultOptions())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			requireEnginesIdentical(t, prog, testMachine(prog.Grid.Size()))
		})
	}
}

// TestEnginesByteIdenticalTestdata runs the whole shipped corpus, with
// pass ablations, under both engines.
func TestEnginesByteIdenticalTestdata(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.hpf")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata files found: %v", err)
	}
	ablations := [][]string{nil, {"availability"}, {"loopdist"}}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, disable := range ablations {
			name := filepath.Base(f)
			for _, d := range disable {
				name += "-no-" + d
			}
			t.Run(name, func(t *testing.T) {
				opt := DefaultOptions()
				opt.Disable = append(opt.Disable, disable...)
				prog, err := CompileSource(string(src), nil, opt)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				cfg := testMachine(prog.Grid.Size())
				cfg.WallLimit = 3 * time.Second
				requireEnginesIdentical(t, prog, cfg)
			})
		}
	}
}

// TestEngineGrainSweep checks byte-identity across pipeline granularity
// settings (the tuner's full-evaluation tier runs the compiled engine
// over exactly this space).
func TestEngineGrainSweep(t *testing.T) {
	src, err := os.ReadFile("../../testdata/ysolve.hpf")
	if err != nil {
		t.Fatal(err)
	}
	for _, grain := range []int{1, 4, 16, 64} {
		opt := DefaultOptions()
		opt.PipelineGrain = grain
		prog, err := CompileSource(string(src), nil, opt)
		if err != nil {
			t.Fatalf("grain %d: compile: %v", grain, err)
		}
		requireEnginesIdentical(t, prog, testMachine(prog.Grid.Size()))
	}
}

// FuzzExecEngines cross-checks the engines on arbitrary source text:
// anything that compiles must execute identically under both.  A wall
// clock limit bounds runaway programs; wall-limit aborts fire at a
// nondeterministic virtual time, so those runs only check that both
// engines abort or neither does nothing further.
func FuzzExecEngines(f *testing.F) {
	files, _ := filepath.Glob("../../testdata/*.hpf")
	for _, file := range files {
		if src, err := os.ReadFile(file); err == nil {
			f.Add(string(src))
		}
	}
	for _, src := range engineCorpus {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// The front end can panic on degenerate directives (pre-existing,
		// engine-independent); this target only hunts execution-engine
		// divergence, so treat any compile failure as a skip.
		prog, err := func() (p *Program, err error) {
			defer func() {
				if rec := recover(); rec != nil {
					err = fmt.Errorf("compile panic: %v", rec)
				}
			}()
			return CompileSource(src, nil, DefaultOptions())
		}()
		if err != nil {
			return
		}
		if prog.Grid.Size() > 16 {
			return
		}
		cfg := testMachine(prog.Grid.Size())
		cfg.TimeLimit = 1.0             // deterministic abort: identical across engines
		cfg.WallLimit = 2 * time.Second // catches deadlocks (frozen clocks), then skipped below
		ri, erri := prog.ExecuteEngine(cfg, EngineInterp)
		rc, errc := prog.ExecuteEngine(cfg, EngineCompiled)
		if errors.Is(erri, mpsim.ErrWallLimit) || errors.Is(errc, mpsim.ErrWallLimit) {
			return
		}
		if (erri == nil) != (errc == nil) {
			t.Fatalf("engines disagree on success: interp err=%v, compiled err=%v", erri, errc)
		}
		if erri != nil {
			return
		}
		mi, mc := ri.Machine, rc.Machine
		if math.Float64bits(mi.Time) != math.Float64bits(mc.Time) {
			t.Fatalf("virtual time differs: interp %v, compiled %v", mi.Time, mc.Time)
		}
		if mi.TotalMessages() != mc.TotalMessages() || mi.TotalBytes() != mc.TotalBytes() {
			t.Fatalf("traffic differs: %d/%d vs %d/%d",
				mi.TotalMessages(), mi.TotalBytes(), mc.TotalMessages(), mc.TotalBytes())
		}
		main := prog.IR.Main()
		if main == nil {
			return
		}
		for _, d := range main.Decls {
			if d.Rank() == 0 {
				continue
			}
			gi, _, _, errI := ri.Global(d.Name)
			gc, _, _, errC := rc.Global(d.Name)
			if (errI == nil) != (errC == nil) || errI != nil || len(gi) != len(gc) {
				if (errI == nil) != (errC == nil) {
					t.Fatalf("%s: Global errors differ: %v vs %v", d.Name, errI, errC)
				}
				continue
			}
			for k := range gi {
				if math.Float64bits(gi[k]) != math.Float64bits(gc[k]) {
					t.Fatalf("%s[%d]: interp %v, compiled %v", d.Name, k, gi[k], gc[k])
				}
			}
		}
	})
}
