package spmd

import (
	"strings"
	"testing"

	"dhpf/internal/mpsim"
)

// TestExplicitBlockSize exercises BLOCK(n) end to end: an explicit block
// size that leaves trailing ranks with partial or empty blocks.
func TestExplicitBlockSize(t *testing.T) {
	src := `
program blk
param N = 20
param P = 4
!hpf$ processors procs(P)
!hpf$ distribute a(BLOCK(7)) onto procs
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    a(i) = 3.0*i
  enddo
  do i = 1, N-2
    a(i) = a(i-1) + a(i+1)
  enddo
end
`
	// Blocks of 7 over 20 elements: ranks own [0:6], [7:13], [14:19], ∅.
	compareWithSerial(t, src, 4, []string{"a"})
}

// TestMachineSizeMismatch: running on the wrong number of ranks fails
// cleanly instead of deadlocking.
func TestMachineSizeMismatch(t *testing.T) {
	src := `
program m
param N = 8
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  a(0) = 1.0
end
`
	prog, err := CompileSource(src, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Execute(testMachine(2)); err == nil {
		t.Fatal("expected rank-count mismatch error")
	}
}

// TestUndefinedCalleeRejected at compile time.
func TestUndefinedCalleeRejected(t *testing.T) {
	src := `
program u
param N = 8
!hpf$ processors procs(2)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  call nosuch(a)
end
`
	if _, err := CompileSource(src, nil, DefaultOptions()); err == nil {
		t.Fatal("expected undefined-procedure error")
	} else if !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("error %q", err)
	}
}

// TestRecursionRejected: the call-graph ordering must reject cycles.
func TestRecursionRejected(t *testing.T) {
	src := `
program r
param N = 8
!hpf$ processors procs(2)
!hpf$ distribute a(BLOCK) onto procs
subroutine f(a)
  real a(0:N-1)
  call g(a)
end
subroutine g(a)
  real a(0:N-1)
  call f(a)
end
subroutine main()
  real a(0:N-1)
  call f(a)
end
`
	if _, err := CompileSource(src, nil, DefaultOptions()); err == nil {
		t.Fatal("expected recursion error")
	} else if !strings.Contains(err.Error(), "recursive") {
		t.Errorf("error %q", err)
	}
}

// TestZeroTripLoops: loops that never execute must not derail analysis
// or execution.
func TestZeroTripLoops(t *testing.T) {
	src := `
program z
param N = 8
!hpf$ processors procs(2)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    a(i) = 1.0*i
  enddo
  do i = 5, 2
    a(i) = 99.0
  enddo
  do i = N, N-1
    a(0) = -1.0
  enddo
end
`
	compareWithSerial(t, src, 2, []string{"a"})
}

// TestConflictingFormalLayouts: binding one formal to two different
// layouts at different call sites is rejected (the paper's compiler
// would clone the procedure).
func TestConflictingFormalLayouts(t *testing.T) {
	src := `
program c
param N = 8
!hpf$ processors procs(2)
!hpf$ template t1(N)
!hpf$ template t2(N)
!hpf$ align a with t1(d0)
!hpf$ align b with t2(d0+1)
!hpf$ distribute t1(BLOCK) onto procs
!hpf$ distribute t2(BLOCK) onto procs
subroutine f(v)
  real v(0:N-1)
  do i = 0, N-1
    v(i) = 1.0
  enddo
end
subroutine main()
  real a(0:N-1)
  real b(0:N-2)
  call f(a)
  call f(b)
end
`
	if _, err := CompileSource(src, nil, DefaultOptions()); err == nil {
		t.Fatal("expected conflicting-layout error")
	} else if !strings.Contains(err.Error(), "conflicting") {
		t.Errorf("error %q", err)
	}
}

// TestSingleRankProgram: P=1 degenerates to serial with no messages.
func TestSingleRankProgram(t *testing.T) {
	src := `
program one
param N = 16
!hpf$ processors procs(1)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    a(i) = 2.0*i
  enddo
  do i = 1, N-1
    a(i) = a(i) + a(i-1)
  enddo
end
`
	_, res := compareWithSerial(t, src, 1, []string{"a"})
	if res.Machine.TotalMessages() != 0 {
		t.Errorf("messages on 1 rank = %d", res.Machine.TotalMessages())
	}
}

// TestTraceEventsWellFormed: per-rank events must be time-ordered and
// non-overlapping (the space–time diagram invariant).
func TestTraceEventsWellFormed(t *testing.T) {
	src := `
program tr
param N = 24
param P = 3
!hpf$ processors procs(P)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs
subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      a(i,j) = 0.1*i + 0.2*j
    enddo
  enddo
  do j = 1, N-2
    do i = 1, N-2
      b(i,j) = a(i,j-1) + a(i,j+1)
    enddo
  enddo
end
`
	prog, err := CompileSource(src, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testMachine(3)
	cfg.Trace = true
	res, err := prog.Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := make([]float64, 3)
	for _, e := range res.Machine.Events {
		if e.End < e.Start {
			t.Fatalf("event ends before it starts: %+v", e)
		}
		if e.Start+1e-15 < last[e.Rank] {
			t.Fatalf("rank %d events overlap: start %g before previous end %g", e.Rank, e.Start, last[e.Rank])
		}
		last[e.Rank] = e.End
	}
}

var _ = mpsim.SP2Config
