package spmd

import (
	"fmt"
	"sort"

	"dhpf/internal/ir"
)

// SerialResult holds the arrays of a sequential reference execution.
type SerialResult struct {
	arrays map[string]*array
}

// Array returns the named main-procedure array's data and bounds.
func (sr *SerialResult) Array(name string) ([]float64, []int, []int, error) {
	a := sr.arrays[name]
	if a == nil {
		return nil, nil, nil, fmt.Errorf("spmd: serial run has no array %q", name)
	}
	return a.data, a.lo, a.hi, nil
}

// Names lists the main-procedure arrays of the run, sorted — the
// default verification set when a caller doesn't name specific arrays.
func (sr *SerialResult) Names() []string {
	names := make([]string, 0, len(sr.arrays))
	for n := range sr.arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunSerial executes the program sequentially, ignoring all HPF
// directives — the reference semantics every compiled SPMD execution is
// validated against (the mini-language analogue of running the
// NPB2.3-serial code).
func RunSerial(prog *ir.Program, params map[string]int) (*SerialResult, error) {
	bind := map[string]int{}
	for k, v := range prog.Params {
		bind[k] = v
	}
	for k, v := range params {
		bind[k] = v
	}
	se := &serialExec{prog: prog, bind: bind}
	var err error
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("spmd: serial execution: %v", rec)
			}
		}()
		se.runProc(prog.Main(), map[string]*array{}, nil)
	}()
	if err != nil {
		return nil, err
	}
	return &SerialResult{arrays: se.mainArrays}, nil
}

type serialExec struct {
	prog       *ir.Program
	bind       map[string]int
	frames     []*frame
	mainArrays map[string]*array
}

func (se *serialExec) top() *frame { return se.frames[len(se.frames)-1] }

func (se *serialExec) runProc(proc *ir.Procedure, actualArrays map[string]*array, floatFormals map[string]float64) {
	f := &frame{proc: proc, arrays: map[string]*array{}, fenv: map[string]float64{}}
	for name, a := range actualArrays {
		f.arrays[name] = a
	}
	for name, v := range floatFormals {
		f.fenv[name] = v
	}
	for _, d := range proc.Decls {
		if d.Rank() == 0 {
			continue
		}
		if _, aliased := f.arrays[d.Name]; aliased {
			continue
		}
		lo := make([]int, d.Rank())
		hi := make([]int, d.Rank())
		for k := range d.LB {
			lo[k] = d.LB[k].EvalOr(se.bind, 0)
			hi[k] = d.UB[k].EvalOr(se.bind, 0)
		}
		f.arrays[d.Name] = newArray(d.Name, lo, hi)
	}
	se.frames = append(se.frames, f)
	if se.mainArrays == nil {
		se.mainArrays = f.arrays
	}
	se.execStmts(proc, proc.Body)
	se.frames = se.frames[:len(se.frames)-1]
}

func (se *serialExec) execStmts(proc *ir.Procedure, stmts []ir.Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Assign:
			se.assign(st)
		case *ir.CallStmt:
			se.call(proc, st)
		case *ir.IfStmt:
			rx := &rankExec{bind: se.bind, frames: se.frames}
			if rx.evalCond(st.Cond) {
				se.execStmts(proc, st.Then)
			} else {
				se.execStmts(proc, st.Else)
			}
		case *ir.Loop:
			lo := st.Lo.EvalOr(se.bind, 0)
			hi := st.Hi.EvalOr(se.bind, 0)
			old, had := se.bind[st.Var]
			if st.Step > 0 {
				for v := lo; v <= hi; v++ {
					se.bind[st.Var] = v
					se.execStmts(proc, st.Body)
				}
			} else {
				for v := lo; v >= hi; v-- {
					se.bind[st.Var] = v
					se.execStmts(proc, st.Body)
				}
			}
			if had {
				se.bind[st.Var] = old
			} else {
				delete(se.bind, st.Var)
			}
		}
	}
}

func (se *serialExec) assign(a *ir.Assign) {
	v := se.eval(a.RHS)
	f := se.top()
	if len(a.LHS.Subs) == 0 {
		f.fenv[a.LHS.Name] = v
		return
	}
	f.arrays[a.LHS.Name].set(se.subVals(a.LHS), v)
}

func (se *serialExec) subVals(r *ir.ArrayRef) []int {
	p := make([]int, len(r.Subs))
	for k, s := range r.Subs {
		if s.Var == "" {
			p[k] = s.Off.EvalOr(se.bind, 0)
		} else {
			p[k] = s.Coef*se.bind[s.Var] + s.Off.EvalOr(se.bind, 0)
		}
	}
	return p
}

func (se *serialExec) call(proc *ir.Procedure, call *ir.CallStmt) {
	callee := se.prog.Proc(call.Callee)
	if callee == nil {
		panic(fmt.Sprintf("call to undefined %q", call.Callee))
	}
	f := se.top()
	actualArrays := map[string]*array{}
	floatFormals := map[string]float64{}
	var saved []struct {
		name string
		val  int
		had  bool
	}
	for k, formal := range callee.Formals {
		switch arg := call.Args[k].(type) {
		case *ir.ArrayRef:
			if len(arg.Subs) == 0 {
				actualArrays[formal] = f.arrays[arg.Name]
				continue
			}
			floatFormals[formal] = se.eval(arg)
		case ir.IndexRef, ir.ParamRef:
			old, had := se.bind[formal]
			saved = append(saved, struct {
				name string
				val  int
				had  bool
			}{formal, old, had})
			se.bind[formal] = int(se.eval(arg))
		case ir.FloatConst:
			if float64(int(arg.Val)) == arg.Val {
				old, had := se.bind[formal]
				saved = append(saved, struct {
					name string
					val  int
					had  bool
				}{formal, old, had})
				se.bind[formal] = int(arg.Val)
			} else {
				floatFormals[formal] = arg.Val
			}
		default:
			floatFormals[formal] = se.eval(arg)
		}
	}
	se.runProc(callee, actualArrays, floatFormals)
	for i := len(saved) - 1; i >= 0; i-- {
		s := saved[i]
		if s.had {
			se.bind[s.name] = s.val
		} else {
			delete(se.bind, s.name)
		}
	}
}

func (se *serialExec) eval(e ir.Expr) float64 {
	// Reuse the rank evaluator's logic through a lightweight shim.
	rx := &rankExec{bind: se.bind, frames: se.frames}
	return rx.eval(e)
}
