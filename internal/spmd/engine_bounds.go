package spmd

// engine_bounds.go derives, once per procedure activation, the per-rank
// iteration guards and hoisted loop-bound clamps the engine executes
// against.  The interpreter answers "does this rank run statement s at
// point p?" with a fresh point slice and a general iset.Set membership
// scan on every iteration point; here the overwhelmingly common case —
// the statement's iteration set is a single box (iset.Set.AsBox) — is
// specialized to per-dimension comparisons on slot values, and for
// communication-free innermost loops the member boxes additionally
// tighten the loop range itself so non-member points are never visited
// at all.

import (
	"math"

	"dhpf/internal/iset"
)

type guardKind uint8

const (
	guardNever guardKind = iota // empty iteration set: never executes
	guardBox                    // single box: compare slots to lo/hi
	guardSet                    // general set: point buffer + Contains
)

// stmtGuard is one statement's per-frame membership test.
type stmtGuard struct {
	kind   guardKind
	lo, hi []int
	set    iset.Set
}

// clampRange is a conservative [lo, hi] window covering every iteration
// of a pure loop on which at least one member statement executes.
type clampRange struct {
	lo, hi int
}

// buildGuards populates f.guards and f.clamps from the iteration sets
// just computed by runProc.  Guards are exact restatements of the
// interpreter's membership test; clamps may only discard iterations on
// which no member statement would execute.
func (rx *rankExec) buildGuards(f *frame, pp *procPlan) {
	f.guards = make([]stmtGuard, len(pp.guardStmts))
	for i, gs := range pp.guardStmts {
		s := f.iters[gs.id]
		g := &f.guards[i]
		switch {
		case s.IsEmpty():
			g.kind = guardNever
		default:
			if b, ok := s.AsBox(); ok && b.Rank() == len(gs.nestSlots) {
				g.kind = guardBox
				g.lo, g.hi = b.Lo, b.Hi
			} else {
				// Multi-box set, or a rank mismatch against the nest
				// (Contains is then vacuously false per box, which the
				// general path reproduces exactly).
				g.kind = guardSet
				g.set = s
			}
		}
	}

	f.clamps = make([]clampRange, len(pp.clamps))
	for i, cs := range pp.clamps {
		c := clampRange{lo: 0, hi: -1} // all members empty: run nothing
		for _, gi := range cs.members {
			g := &f.guards[gi]
			switch g.kind {
			case guardNever:
				// contributes no iterations
			case guardBox:
				if cs.pos < len(g.lo) {
					if c.lo > c.hi {
						c = clampRange{lo: g.lo[cs.pos], hi: g.hi[cs.pos]}
					} else {
						c.lo = min(c.lo, g.lo[cs.pos])
						c.hi = max(c.hi, g.hi[cs.pos])
					}
				} else {
					c = clampRange{lo: math.MinInt, hi: math.MaxInt}
				}
			default:
				// General set: no cheap bound — disable the clamp.
				c = clampRange{lo: math.MinInt, hi: math.MaxInt}
			}
			if c.lo == math.MinInt && c.hi == math.MaxInt {
				break
			}
		}
		f.clamps[i] = c
	}
}
