package spmd

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedExamplesCompileAndVerify compiles every .hpf file under
// testdata/ and checks the execution against serial.
func TestShippedExamplesCompileAndVerify(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.hpf")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata files found: %v", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := CompileSource(string(src), nil, DefaultOptions())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if _, err := prog.Execute(testMachine(prog.Grid.Size())); err != nil {
				t.Fatalf("execute: %v", err)
			}
		})
	}
}
