package spmd

// kernel_extract.go lowers engine-plan loop subtrees to KernelUnit
// specs.  Extraction is conservative: a subtree qualifies only when the
// runtime precheck plus the emitted flat code can reproduce the closure
// engine's behaviour exactly — same FP operations and order, same flop
// accumulation, same guard decisions, same stores — so anything with
// interior communication, calls, non-canonical intrinsics, or shapes
// whose bounds safety interval analysis cannot establish is simply left
// to the closures.  Maximal qualifying subtrees are chosen: if a loop
// qualifies, its descendants are covered by the same unit; if not, its
// body is scanned for smaller roots.

import (
	"dhpf/internal/ir"
)

// KernelUnits returns the program's specializable loop nests, extracted
// once and shared.  The list is deterministic (procedure order, then
// body order) and empty when the engine plan itself cannot be built.
func (p *Program) KernelUnits() []*KernelUnit {
	p.kuOnce.Do(func() {
		ep, err := p.enginePlanFor()
		if err != nil {
			return
		}
		var params map[string]int
		if p.Ctx != nil && p.Ctx.Bind != nil {
			params = p.Ctx.Bind.Params
		}
		for _, proc := range p.IR.Procs {
			pp := ep.procs[proc.Name]
			if pp == nil {
				continue
			}
			scanKernelRoots(ep, pp, params, pp.body, 0, p)
		}
	})
	return p.kunits
}

func scanKernelRoots(ep *enginePlan, pp *procPlan, params map[string]int, body []planStmt, depth int, p *Program) {
	for _, s := range body {
		switch st := s.(type) {
		case *pLoop:
			if u := tryKernelUnit(ep, pp, params, st, depth); u != nil {
				p.kunits = append(p.kunits, u)
				p.krootList = append(p.krootList, st)
			} else {
				scanKernelRoots(ep, pp, params, st.body, depth+1, p)
			}
		case *pIf:
			scanKernelRoots(ep, pp, params, st.then, depth, p)
			scanKernelRoots(ep, pp, params, st.els, depth, p)
		}
	}
}

// kextract converts one candidate subtree; any unsupported construct
// flips ok and the candidate is abandoned.
type kextract struct {
	ep     *enginePlan
	pp     *procPlan
	params map[string]int
	u      *KernelUnit

	scope    []kscopeEntry // in-scope kernel loops, outer → inner
	nLevels  int
	nBounds  int
	nAssigns int
	arrIdx   map[string]int
	curRefs  []KRefCheck
	noArray  bool // inside an if condition: array reads are ineligible
	ok       bool
}

type kscopeEntry struct {
	name  string
	level int
}

func tryKernelUnit(ep *enginePlan, pp *procPlan, params map[string]int, pl *pLoop, depth int) *KernelUnit {
	x := &kextract{
		ep: ep, pp: pp, params: params,
		u: &KernelUnit{
			Proc:      pp.proc.Name,
			RootID:    pl.l.ID,
			RootDepth: depth,
			SlotNames: map[int]string{},
		},
		arrIdx: map[string]int{},
		ok:     true,
	}
	root := x.loop(pl, true)
	if !x.ok || x.nAssigns == 0 {
		return nil
	}
	x.u.Root = root
	x.u.NumLevels = x.nLevels
	x.u.NumBounds = x.nBounds
	x.u.Points = x.points(root)
	return x.u
}

func (x *kextract) fail() {
	x.ok = false
}

func (x *kextract) lookupScope(name string) (int, bool) {
	for i := len(x.scope) - 1; i >= 0; i-- {
		if x.scope[i].name == name {
			return x.scope[i].level, true
		}
	}
	return 0, false
}

func (x *kextract) islot(name string) int {
	s, ok := x.ep.intSlot[name]
	if !ok {
		// Plan compilation registered a slot for every referenced name;
		// a miss means the construct never went through compileExpr.
		x.fail()
		return 0
	}
	x.u.SlotNames[s] = name
	return s
}

// loop converts one pLoop level.  Only the unit root may carry events
// and reductions (they fire outside iteratePlanLoop); interior loops
// must be communication-free or the whole candidate is rejected.
func (x *kextract) loop(pl *pLoop, isRoot bool) *KLoop {
	if !x.ok {
		return nil
	}
	if !isRoot && (len(pl.readEvents) > 0 || len(pl.writeEvents) > 0 ||
		len(pl.pipeEvents) > 0 || len(pl.reds) > 0) {
		x.fail()
		return nil
	}
	if pl.l.Step != 1 && pl.l.Step != -1 {
		x.fail()
		return nil
	}
	// Lo/Hi are converted before this level enters scope: the closure
	// engine evaluates them with the loop's own slot still holding its
	// pre-entry value, which slot restoration keeps invariant across
	// repeated entries within one kernel invocation.
	kl := &KLoop{
		Var:      pl.l.Var,
		Slot:     pl.varSlot,
		Level:    x.nLevels,
		Step:     pl.l.Step,
		Lo:       x.aff(pl.l.Lo),
		Hi:       x.aff(pl.l.Hi),
		ClampIdx: pl.clampIdx,
		WinIdx:   x.nBounds,
	}
	x.nLevels++
	x.nBounds += 2
	x.scope = append(x.scope, kscopeEntry{name: pl.l.Var, level: kl.Level})
	kl.Body = x.stmts(pl.body)
	x.scope = x.scope[:len(x.scope)-1]
	return kl
}

func (x *kextract) stmts(body []planStmt) []KStmt {
	var out []KStmt
	for _, s := range body {
		if !x.ok {
			return nil
		}
		switch st := s.(type) {
		case *pAssign:
			out = append(out, x.assign(st))
		case *pLoop:
			out = append(out, x.loop(st, false))
		case *pIf:
			out = append(out, x.ifStmt(st))
		default:
			x.fail()
			return nil
		}
	}
	return out
}

func (x *kextract) assign(st *pAssign) *KAssign {
	if st.guardIdx < 0 {
		x.fail()
		return nil
	}
	kd := len(st.nestSlots) - x.u.RootDepth
	if kd != len(x.scope) || kd < 1 {
		x.fail()
		return nil
	}
	levels := make([]int, kd)
	for i, sc := range x.scope {
		levels[i] = sc.level
	}
	x.curRefs = nil
	rhs := x.expr(st.a.RHS)
	ka := &KAssign{
		GuardIdx:  st.guardIdx,
		NestSlots: st.nestSlots,
		Levels:    levels,
		BoundsIdx: x.nBounds,
		KDims:     kd,
		RHS:       rhs,
		Flops:     st.flops,
	}
	x.nBounds += 2 * kd
	lhs := st.a.LHS
	if len(lhs.Subs) == 0 {
		fs, ok := x.pp.floatSlot[lhs.Name]
		if !ok {
			x.fail()
			return nil
		}
		ka.Scalar = true
		ka.FSlot = fs
	} else {
		ai, subs := x.arefParts(lhs)
		ka.Arr = ai
		ka.Subs = subs
	}
	ka.Refs = x.curRefs
	x.curRefs = nil
	if !x.ok {
		return nil
	}
	x.nAssigns++
	return ka
}

func (x *kextract) ifStmt(st *pIf) *KIf {
	switch st.cond.Op {
	case "<", ">", "<=", ">=", "==", "/=":
	default:
		x.fail()
		return nil
	}
	// The closure engine evaluates the condition on every enclosing
	// iteration point regardless of guards; that is only reproducible
	// without bounds analysis if the condition cannot touch arrays.
	x.noArray = true
	l := x.expr(st.cond.L)
	r := x.expr(st.cond.R)
	x.noArray = false
	ki := &KIf{Op: st.cond.Op, L: l, R: r}
	ki.Then = x.stmts(st.then)
	ki.Els = x.stmts(st.els)
	if !x.ok {
		return nil
	}
	return ki
}

func (x *kextract) expr(e ir.Expr) KExpr {
	if !x.ok {
		return nil
	}
	switch v := e.(type) {
	case ir.FloatConst:
		return KConst{Val: v.Val}
	case ir.IndexRef:
		return x.intName(v.Name)
	case ir.ParamRef:
		return x.intName(v.Name)
	case ir.ScalarRef:
		fs, ok := x.pp.floatSlot[v.Name]
		if !ok {
			x.fail()
			return nil
		}
		if lv, in := x.lookupScope(v.Name); in {
			return KScalarLocal{FSlot: fs, Level: lv}
		}
		return KScalar{FSlot: fs, ISlot: x.islot(v.Name)}
	case *ir.ArrayRef:
		if x.noArray {
			x.fail()
			return nil
		}
		ai, subs := x.arefParts(v)
		if !x.ok {
			return nil
		}
		return &KARead{Arr: ai, Subs: subs}
	case *ir.Bin:
		switch v.Op {
		case '+', '-', '*', '/':
			l := x.expr(v.L)
			r := x.expr(v.R)
			if !x.ok {
				return nil
			}
			return &KBin{Op: v.Op, L: l, R: r}
		}
		x.fail()
		return nil
	case *ir.Intrinsic:
		switch v.Name {
		case "sqrt", "exp", "sin", "cos", "log", "abs":
			if len(v.Args) != 1 {
				x.fail()
				return nil
			}
		case "min", "max", "mod", "pow":
			if len(v.Args) != 2 {
				x.fail()
				return nil
			}
		default:
			x.fail()
			return nil
		}
		args := make([]KExpr, len(v.Args))
		for i, a := range v.Args {
			args[i] = x.expr(a)
		}
		if !x.ok {
			return nil
		}
		return &KIntrin{Name: v.Name, Args: args}
	}
	x.fail()
	return nil
}

// intName resolves an IndexRef/ParamRef: an in-scope kernel loop
// variable reads the loop local; anything else reads its integer slot,
// whose value is invariant for the whole invocation (kernels never
// write slots, and interior loops restore them on exit exactly like
// iteratePlanLoop).
func (x *kextract) intName(name string) KExpr {
	if lv, in := x.lookupScope(name); in {
		return KLocal{Level: lv}
	}
	return KSlotInt{Slot: x.islot(name)}
}

// arefParts converts an array access and queues its precheck entry.
func (x *kextract) arefParts(ar *ir.ArrayRef) (int, []KSub) {
	ai := x.array(ar.Name)
	if !x.ok {
		return 0, nil
	}
	if len(ar.Subs) != len(x.u.Arrays[ai].Lo) {
		x.fail()
		return 0, nil
	}
	subs := make([]KSub, len(ar.Subs))
	for k, s := range ar.Subs {
		subs[k] = x.sub(s)
	}
	if !x.ok {
		return 0, nil
	}
	x.curRefs = append(x.curRefs, KRefCheck{Arr: ai, Subs: subs})
	return ai, subs
}

// array resolves a name to a unit array with compile-time geometry.
// Declared bounds must be affine in program parameters only, so lo, hi
// and the row-major strides are constants the emitted code can inline;
// the runtime precheck re-verifies the live array against them (a
// formal's dummy shape may differ from the actual — then the kernel
// simply does not run).
func (x *kextract) array(name string) int {
	if ai, ok := x.arrIdx[name]; ok {
		return ai
	}
	aslot, ok := x.pp.arraySlot[name]
	if !ok {
		x.fail()
		return 0
	}
	d := x.pp.proc.DeclOf(name)
	if d == nil || d.Rank() == 0 {
		x.fail()
		return 0
	}
	rank := d.Rank()
	ka := KArray{ASlot: aslot, Name: name, Lo: make([]int, rank), Hi: make([]int, rank), Stride: make([]int, rank)}
	for k := 0; k < rank; k++ {
		lo, ok1 := x.paramAff(d.LB[k])
		hi, ok2 := x.paramAff(d.UB[k])
		if !ok1 || !ok2 {
			x.fail()
			return 0
		}
		ka.Lo[k], ka.Hi[k] = lo, hi
	}
	size := 1
	for k := rank - 1; k >= 0; k-- {
		ka.Stride[k] = size
		w := ka.Hi[k] - ka.Lo[k] + 1
		if w < 0 {
			w = 0
		}
		size *= w
	}
	ai := len(x.u.Arrays)
	x.u.Arrays = append(x.u.Arrays, ka)
	x.arrIdx[name] = ai
	return ai
}

// paramAff evaluates a declaration-bound affine over parameters alone,
// matching runProc's EvalOr(bind, 0) when every term is a parameter.
func (x *kextract) paramAff(a ir.AffExpr) (int, bool) {
	v := a.Const
	for _, t := range a.Terms {
		pv, ok := x.params[t.Name]
		if !ok {
			return 0, false
		}
		v += t.Coef * pv
	}
	return v, true
}

func (x *kextract) aff(a ir.AffExpr) KAff {
	out := KAff{Const: a.Const}
	for _, t := range a.Terms {
		if lv, in := x.lookupScope(t.Name); in {
			out.Terms = append(out.Terms, KTerm{Coef: t.Coef, Local: true, Level: lv})
		} else {
			out.Terms = append(out.Terms, KTerm{Coef: t.Coef, Slot: x.islot(t.Name)})
		}
	}
	return out
}

func (x *kextract) sub(s ir.Subscript) KSub {
	out := KSub{Off: x.aff(s.Off)}
	if s.Var == "" {
		return out
	}
	out.HasVar = true
	out.Coef = s.Coef
	if lv, in := x.lookupScope(s.Var); in {
		out.VarLocal = true
		out.Level = lv
	} else {
		out.VarSlot = x.islot(s.Var)
	}
	return out
}

// points estimates the unit's iteration points per invocation from
// parameter-resolvable loop bounds (levels with data-dependent bounds
// contribute a factor of 1 — a deliberate underestimate).
func (x *kextract) points(kl *KLoop) float64 {
	trip := 1.0
	if lo, ok1 := x.staticAff(kl.Lo); ok1 {
		if hi, ok2 := x.staticAff(kl.Hi); ok2 {
			n := hi - lo + 1
			if kl.Step < 0 {
				n = lo - hi + 1
			}
			if n < 0 {
				n = 0
			}
			trip = float64(n)
		}
	}
	inner := 0.0
	any := false
	for _, s := range kl.Body {
		if il, ok := s.(*KLoop); ok {
			inner += x.points(il)
			any = true
		}
	}
	if !any {
		return trip
	}
	return trip * inner
}

func (x *kextract) staticAff(a KAff) (int, bool) {
	v := a.Const
	for _, t := range a.Terms {
		if t.Local {
			return 0, false
		}
		name, ok := x.u.SlotNames[t.Slot]
		if !ok {
			return 0, false
		}
		pv, ok := x.params[name]
		if !ok {
			return 0, false
		}
		v += t.Coef * pv
	}
	return v, true
}
