package spmd

// Differential tests of the shared-memory backend against the message
// machine: the same program, engine, and options must produce
// bit-identical global array contents on both substrates (and the
// interpreter oracle), under every pass ablation the message-side
// differential suite runs.  Virtual clocks and traffic counters are
// deliberately NOT compared — the backends price time differently by
// design; only numerics carry correctness.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dhpf/internal/mpsim"
	"dhpf/internal/passes"
)

// compileBackend compiles src with the backend set on otherwise-given
// options.
func compileBackend(t *testing.T, src string, opt Options, backend string) *Program {
	t.Helper()
	opt.Backend = backend
	prog, err := CompileSource(src, nil, opt)
	if err != nil {
		t.Fatalf("compile (backend %s): %v", backend, err)
	}
	return prog
}

// requireShmMatchesMp runs src under the message backend (compiled
// engine, the already-verified reference) and under the shared-memory
// backend with both engines, and fails on any bit-level numeric
// difference.
func requireShmMatchesMp(t *testing.T, src string, opt Options, backend string) {
	t.Helper()
	mp := compileBackend(t, src, opt, passes.BackendMP)
	sm := compileBackend(t, src, opt, backend)
	cfg := testMachine(mp.Grid.Size())
	cfg.WallLimit = 3 * time.Second
	rm, errm := mp.ExecuteEngine(cfg, EngineCompiled)
	rs, errs := sm.ExecuteEngine(cfg, EngineCompiled)
	ri, erri := sm.ExecuteEngine(cfg, EngineInterp)
	if errors.Is(errm, mpsim.ErrWallLimit) || errors.Is(errs, mpsim.ErrWallLimit) || errors.Is(erri, mpsim.ErrWallLimit) {
		t.Skipf("wall limit hit (mp err=%v, shm err=%v, shm-interp err=%v)", errm, errs, erri)
	}
	if (errm == nil) != (errs == nil) || (errs == nil) != (erri == nil) {
		t.Fatalf("backends disagree on success: mp err=%v, shm err=%v, shm-interp err=%v", errm, errs, erri)
	}
	if errm != nil {
		return
	}
	if rs.Shm == nil || rs.Shm.Threads != mp.Grid.Size() {
		t.Fatalf("shm run missing team counters: %+v", rs.Shm)
	}
	if backend == passes.BackendShm && rs.Machine.TotalMessages() != 0 {
		t.Fatalf("pure shm run reports %d messages", rs.Machine.TotalMessages())
	}
	for _, d := range mp.IR.Main().Decls {
		if d.Rank() == 0 {
			continue
		}
		gm, _, _, errM := rm.Global(d.Name)
		gs, _, _, errS := rs.Global(d.Name)
		gi, _, _, errI := ri.Global(d.Name)
		if (errM == nil) != (errS == nil) || (errS == nil) != (errI == nil) {
			t.Fatalf("%s: Global errors differ: mp %v, shm %v, shm-interp %v", d.Name, errM, errS, errI)
		}
		if errM != nil {
			continue
		}
		if len(gm) != len(gs) || len(gm) != len(gi) {
			t.Fatalf("%s: lengths differ: mp %d, shm %d, shm-interp %d", d.Name, len(gm), len(gs), len(gi))
		}
		for k := range gm {
			if math.Float64bits(gm[k]) != math.Float64bits(gs[k]) {
				t.Fatalf("%s[%d]: mp %v (%#x), shm %v (%#x)",
					d.Name, k, gm[k], math.Float64bits(gm[k]), gs[k], math.Float64bits(gs[k]))
			}
			if math.Float64bits(gs[k]) != math.Float64bits(gi[k]) {
				t.Fatalf("%s[%d]: shm engines differ: compiled %v, interp %v", d.Name, k, gs[k], gi[k])
			}
		}
	}
}

// TestShmByteIdenticalInline runs the inline differential corpus under
// both shared-memory layouts.
func TestShmByteIdenticalInline(t *testing.T) {
	for _, backend := range []string{passes.BackendShm, passes.BackendHybrid} {
		for name, src := range engineCorpus {
			t.Run(backend+"/"+name, func(t *testing.T) {
				requireShmMatchesMp(t, src, DefaultOptions(), backend)
			})
		}
	}
}

// TestShmByteIdenticalTestdata runs the whole shipped corpus, with pass
// ablations, under the shared-memory backend.  The hybrid layout rides
// along on the unablated pass to bound runtime (its synchronization
// protocol is identical; only the cost model differs).
func TestShmByteIdenticalTestdata(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.hpf")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata files found: %v", err)
	}
	ablations := [][]string{nil, {"availability"}, {"loopdist"}}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, disable := range ablations {
			name := filepath.Base(f)
			for _, d := range disable {
				name += "-no-" + d
			}
			t.Run(name, func(t *testing.T) {
				opt := DefaultOptions()
				opt.Disable = append(opt.Disable, disable...)
				requireShmMatchesMp(t, string(src), opt, passes.BackendShm)
			})
			if disable == nil {
				t.Run(filepath.Base(f)+"-hybrid", func(t *testing.T) {
					requireShmMatchesMp(t, string(src), DefaultOptions(), passes.BackendHybrid)
				})
			}
		}
	}
}

// TestShmRaceDetector exercises the shared-memory runtime's actual
// concurrency — rendezvous pulls, drains, barriers, reductions — on a
// multi-procedure program with real cross-thread array reads, so the
// race detector (CI runs this package under -race) can observe every
// happens-before edge the protocol claims.
func TestShmRaceDetector(t *testing.T) {
	srcs := []string{engineCorpus["interprocedural"], engineCorpus["wavefront"], engineCorpus["reduction"]}
	for i, src := range srcs {
		for _, backend := range []string{passes.BackendShm, passes.BackendHybrid} {
			t.Run(fmt.Sprintf("%s/%d", backend, i), func(t *testing.T) {
				prog := compileBackend(t, src, DefaultOptions(), backend)
				if _, err := prog.ExecuteEngine(testMachine(prog.Grid.Size()), EngineCompiled); err != nil {
					t.Fatalf("execute: %v", err)
				}
			})
		}
	}
}

// TestShmGrainSweep checks shm/mp identity across pipeline granularity
// settings: the strip-level rendezvous protocol must match the message
// protocol at every grain the tuner would explore.
func TestShmGrainSweep(t *testing.T) {
	src, err := os.ReadFile("../../testdata/ysolve.hpf")
	if err != nil {
		t.Fatal(err)
	}
	for _, grain := range []int{1, 4, 16, 64} {
		opt := DefaultOptions()
		opt.PipelineGrain = grain
		t.Run(fmt.Sprintf("grain%d", grain), func(t *testing.T) {
			requireShmMatchesMp(t, string(src), opt, passes.BackendShm)
		})
	}
}

// FuzzShmVsMp cross-checks the backends on arbitrary source text:
// anything that compiles must produce bit-identical numerics on the
// message machine, the shared-memory team, and the interpreter oracle.
// Time-limit aborts are compared only for mutual occurrence when the
// clocks agree they fired — the two cost models legitimately cross a
// virtual-time budget at different points, so a one-sided ErrTimeLimit
// is a skip, not a failure.
func FuzzShmVsMp(f *testing.F) {
	files, _ := filepath.Glob("../../testdata/*.hpf")
	for _, file := range files {
		if src, err := os.ReadFile(file); err == nil {
			f.Add(string(src))
		}
	}
	for _, src := range engineCorpus {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Front-end panics on degenerate directives are pre-existing and
		// backend-independent; this target only hunts substrate
		// divergence, so any compile failure is a skip.
		compile := func(backend string) (p *Program, err error) {
			defer func() {
				if rec := recover(); rec != nil {
					err = fmt.Errorf("compile panic: %v", rec)
				}
			}()
			opt := DefaultOptions()
			opt.Backend = backend
			return CompileSource(src, nil, opt)
		}
		mp, err := compile(passes.BackendMP)
		if err != nil {
			return
		}
		if mp.Grid.Size() > 16 {
			return
		}
		sm, err := compile(passes.BackendShm)
		if err != nil {
			t.Fatalf("compiles under mp but not shm: %v", err)
		}
		cfg := testMachine(mp.Grid.Size())
		cfg.TimeLimit = 1.0             // deterministic abort within each backend
		cfg.WallLimit = 2 * time.Second // catches deadlocks, then skipped below
		rm, errm := mp.ExecuteEngine(cfg, EngineCompiled)
		rs, errs := sm.ExecuteEngine(cfg, EngineCompiled)
		ri, erri := mp.ExecuteEngine(cfg, EngineInterp)
		if errors.Is(errm, mpsim.ErrWallLimit) || errors.Is(errs, mpsim.ErrWallLimit) || errors.Is(erri, mpsim.ErrWallLimit) {
			return
		}
		if errors.Is(errm, mpsim.ErrTimeLimit) != errors.Is(errs, mpsim.ErrTimeLimit) {
			// Different cost models cross the virtual-time budget at
			// different points; a one-sided abort is not a divergence.
			return
		}
		if (errm == nil) != (errs == nil) || (errm == nil) != (erri == nil) {
			t.Fatalf("backends disagree on success: mp err=%v, shm err=%v, interp err=%v", errm, errs, erri)
		}
		if errm != nil {
			return
		}
		main := mp.IR.Main()
		if main == nil {
			return
		}
		for _, d := range main.Decls {
			if d.Rank() == 0 {
				continue
			}
			gm, _, _, errM := rm.Global(d.Name)
			gs, _, _, errS := rs.Global(d.Name)
			gi, _, _, errI := ri.Global(d.Name)
			if (errM == nil) != (errS == nil) || (errM == nil) != (errI == nil) {
				t.Fatalf("%s: Global errors differ: mp %v, shm %v, interp %v", d.Name, errM, errS, errI)
			}
			if errM != nil || len(gm) != len(gs) || len(gm) != len(gi) {
				continue
			}
			for k := range gm {
				if math.Float64bits(gm[k]) != math.Float64bits(gs[k]) {
					t.Fatalf("%s[%d]: mp %v, shm %v", d.Name, k, gm[k], gs[k])
				}
				if math.Float64bits(gm[k]) != math.Float64bits(gi[k]) {
					t.Fatalf("%s[%d]: mp %v, interp %v", d.Name, k, gm[k], gi[k])
				}
			}
		}
	})
}
