// Package spmd is dhpf's back end: it lowers an analyzed mini-HPF
// program into an executable SPMD form and runs it on the mpsim virtual
// machine — every rank interprets its own partition of the iteration
// space, exchanging exactly the messages the communication analysis
// planned, so compiled programs produce real numeric results (checked
// against serial execution) *and* realistic virtual-time behaviour
// (pipelines serialize, boundary exchanges cost latency + volume).
package spmd

import (
	"context"
	"fmt"
	"sync"

	"dhpf/internal/analysis"
	"dhpf/internal/cache"
	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/passes"
	"dhpf/internal/verify"
)

// Options bundles the optimization switches of the whole pipeline.  It
// is the pass pipeline's option set: besides the per-phase switches it
// carries Disable (drop optional passes by name) and Instrument
// (per-pass communication-volume probing).
type Options = passes.Options

// ReductionPlan is one recognized parallel reduction.
type ReductionPlan = passes.ReductionPlan

// DefaultOptions enables every optimization with the paper's defaults.
func DefaultOptions() Options { return passes.DefaultOptions() }

// Program is a compiled SPMD program.
type Program struct {
	IR   *ir.Program
	Ctx  *cp.Context
	Sel  *cp.Selection
	Comm map[string]*comm.Analysis // per procedure
	// Reductions lists the recognized parallel reductions per procedure:
	// scalar accumulations whose iterations the CP partitions, finalized
	// with a collective combine at the loop exit (dHPF's "reduction
	// recognition", §2).
	Reductions map[string][]ReductionPlan
	Grid       *hpf.Grid
	Opt        Options
	// Stats holds the per-pass instrumentation records of the pipeline
	// run that produced this program.
	Stats []passes.Stat

	// Lazily built compiled-engine plan (engine.go): constructed at most
	// once per Program and shared read-only by every execution and rank.
	engOnce sync.Once
	eng     *enginePlan
	engErr  error

	// Lazily extracted native-kernel units (kernel_extract.go):
	// kunits[i]'s plan root is krootList[i]; registry resolution happens
	// per execution so late-registered kernels still bind.
	kuOnce    sync.Once
	kunits    []*KernelUnit
	krootList []*pLoop

	// tplans memoizes transfersFor results (exec.go): a transfer plan
	// depends only on the compile-time communication sets plus the
	// scalar binding, call depth and strip window — all captured in the
	// cache key — and every rank of every execution with the same key
	// computes the identical, subsequently read-only list, so the first
	// computation serves all of them.
	tplans sync.Map // string → []comm.Transfer
}

// Compile parses nothing: it takes an already-parsed program and runs
// the pass pipeline over it — directive binding, dependence analysis,
// CP selection (§2, §4, §6), selective loop distribution (§5), and
// communication planning with availability elimination (§7).
func Compile(prog *ir.Program, params map[string]int, opt Options) (*Program, error) {
	return compilePipeline(context.Background(), &passes.CompileContext{IR: prog, Params: params, Opt: opt})
}

// CompileSource is Compile from mini-HPF source text (the parse pass
// does the parsing).
func CompileSource(src string, params map[string]int, opt Options) (*Program, error) {
	return CompileSourceCtx(context.Background(), src, params, opt)
}

// CompileSourceCtx is CompileSource with cancellation: the pipeline
// checks ctx at every pass boundary, so a cancelled or timed-out compile
// aborts between passes (the service's per-request timeout path).
func CompileSourceCtx(ctx context.Context, src string, params map[string]int, opt Options) (*Program, error) {
	return compilePipeline(ctx, &passes.CompileContext{Source: src, Params: params, Opt: opt})
}

func compilePipeline(ctx context.Context, cc *passes.CompileContext) (*Program, error) {
	if err := passes.RunCtx(ctx, cc); err != nil {
		return nil, err
	}
	return programOf(cc), nil
}

func programOf(cc *passes.CompileContext) *Program {
	return &Program{
		IR: cc.IR, Ctx: cc.Ctx, Sel: cc.Sel,
		Comm:       cc.Comm,
		Reductions: cc.Reductions,
		Grid:       cc.Grid, Opt: cc.Opt,
		Stats: cc.Stats,
	}
}

// CompileIncremental compiles source through the memoizing scheduler
// (passes.RunIncremental): per-procedure dependence graphs, communication
// plans and verification fragments are reused from the store when the
// procedure's environment fingerprint is unchanged, and only dirty
// procedures are re-analyzed.  The resulting Program is byte-for-byte
// identical to CompileSource of the same text.
func CompileIncremental(src string, params map[string]int, opt Options, store *cache.ArtifactStore) (*Program, *passes.Delta, error) {
	return CompileIncrementalCtx(context.Background(), src, params, opt, store)
}

// CompileIncrementalCtx is CompileIncremental with cancellation at pass
// boundaries.
func CompileIncrementalCtx(ctx context.Context, src string, params map[string]int, opt Options, store *cache.ArtifactStore) (*Program, *passes.Delta, error) {
	cc := &passes.CompileContext{Source: src, Params: params, Opt: opt}
	delta, err := passes.RunIncrementalCtx(ctx, cc, store)
	if err != nil {
		return nil, nil, err
	}
	return programOf(cc), delta, nil
}

// PassStats returns the per-pass instrumentation of the compilation:
// one record per executed pass, in pipeline order.
func (p *Program) PassStats() []passes.Stat { return p.Stats }

// Verify re-runs the translation validator over the program's analyses
// and returns the fresh report.  It always recomputes (never returns the
// report cached by the in-pipeline verify pass), so callers that mutate
// the analyses — the tuner's corruption tests, external tooling — get an
// honest verdict.
func (p *Program) Verify() (*verify.Report, error) {
	reductions := map[int]bool{}
	for _, plans := range p.Reductions {
		for _, r := range plans {
			reductions[r.Stmt.ID] = true
		}
	}
	backend, _ := passes.ParseBackend(p.Opt.Backend)
	return verify.Run(verify.Input{
		IR: p.IR, Ctx: p.Ctx, Sel: p.Sel, Comm: p.Comm,
		Reductions: reductions,
		Backend:    backend,
	})
}

// AnalysisInput builds the static-analysis input for this program: the
// same post-pipeline facts the in-pipeline analyze pass reads, so
// analysis.Run and analysis.Predict on it agree with the pipeline's own
// analysis (and, by the exactness invariant, with execution).
func (p *Program) AnalysisInput() *analysis.Input {
	reds := map[string][]analysis.Reduction{}
	for name, plans := range p.Reductions {
		for _, r := range plans {
			reds[name] = append(reds[name], analysis.Reduction{Loop: r.Loop, Stmt: r.Stmt, Var: r.Var, Op: r.Op})
		}
	}
	backend, _ := passes.ParseBackend(p.Opt.Backend)
	return &analysis.Input{
		IR: p.IR, Ctx: p.Ctx, Sel: p.Sel, Comm: p.Comm,
		Reductions:    reds,
		Grid:          p.Grid,
		Backend:       backend,
		PipelineGrain: p.Opt.PipelineGrain,
	}
}

// Analyze runs the whole-program static analysis over the compiled
// facts: symbolic summaries plus dataflow diagnostics.
func (p *Program) Analyze() (*analysis.Result, error) {
	return analysis.Run(p.AnalysisInput())
}

// PredictCost runs the static cost oracle for this program's backend.
func (p *Program) PredictCost() (*analysis.Cost, error) {
	return analysis.Predict(p.AnalysisInput())
}

// Report renders the compilation decisions (CPs, communication events,
// notes) as text — what cmd/dhpfc prints.
func (p *Program) Report() string {
	out := fmt.Sprintf("program %s on %s%v (%d ranks)\n", p.IR.Name, p.Grid.Name, p.Grid.Shape, p.Grid.Size())
	for _, proc := range p.IR.Procs {
		out += fmt.Sprintf("\nsubroutine %s:\n", proc.Name)
		if e := p.Sel.Entry[proc.Name]; e != nil && !e.Replicated() {
			out += fmt.Sprintf("  entry CP: %s\n", e)
		}
		ir.Walk(proc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
			switch st := s.(type) {
			case *ir.Assign:
				out += fmt.Sprintf("  stmt %-3d %-40s %s\n", st.ID, st.LHS.String()+" = ...", p.Sel.CPOf(st.ID))
			case *ir.CallStmt:
				out += fmt.Sprintf("  stmt %-3d call %-35s %s\n", st.ID, st.Callee, p.Sel.CPOf(st.ID))
			}
			return true
		})
		for _, e := range p.Comm[proc.Name].Events {
			out += "  " + e.String() + p.eventVolume(proc, e) + "\n"
		}
	}
	if notes := p.Sel.Notes(); len(notes) > 0 {
		out += "\nnotes:\n"
		for _, n := range notes {
			out += "  " + n + "\n"
		}
	}
	return out
}

// eventVolume summarizes a live event's fully-vectorized transfer plan
// (messages and bytes) for the report.
func (p *Program) eventVolume(proc *ir.Procedure, e *comm.Event) string {
	if e.Eliminated {
		return ""
	}
	var plan []comm.Transfer
	if e.Kind == comm.ReadComm {
		plan = comm.ReadTransfers(p.Ctx, proc, p.Sel, []*comm.Event{e})
	} else {
		plan = comm.WriteBackTransfers(p.Ctx, proc, p.Sel, []*comm.Event{e})
	}
	if len(plan) == 0 {
		return ""
	}
	var bytes int64
	for _, t := range plan {
		bytes += t.Bytes()
	}
	return fmt.Sprintf("  [%d msgs, %d B vectorized]", len(plan), bytes)
}

// StaticFlops exposes the per-statement flop cost so that hand-coded
// implementations of the same formulas (the NAS baselines) can charge
// identical virtual-time work.
func StaticFlops(a *ir.Assign) float64 { return flopsOf(a) }

// flopsOf is the executor's per-statement flop charge.  It delegates to
// the analysis package's canonical model so the static cost oracle
// (analysis.Predict) and the measured counters agree by construction.
func flopsOf(a *ir.Assign) float64 { return analysis.FlopsOf(a) }
