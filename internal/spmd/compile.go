// Package spmd is dhpf's back end: it lowers an analyzed mini-HPF
// program into an executable SPMD form and runs it on the mpsim virtual
// machine — every rank interprets its own partition of the iteration
// space, exchanging exactly the messages the communication analysis
// planned, so compiled programs produce real numeric results (checked
// against serial execution) *and* realistic virtual-time behaviour
// (pipelines serialize, boundary exchanges cost latency + volume).
package spmd

import (
	"fmt"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/dep"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/parser"
)

// Options bundles the optimization switches of the whole pipeline.
type Options struct {
	CP   cp.Options
	Comm comm.Options
	// PipelineGrain is the strip width of coarse-grain pipelining in
	// wavefront loops (iterations of the strip-mined inner loop per
	// message).  The paper notes dHPF applies one global granularity.
	PipelineGrain int
}

// DefaultOptions enables every optimization with the paper's defaults.
func DefaultOptions() Options {
	return Options{
		CP:            cp.DefaultOptions(),
		Comm:          comm.DefaultOptions(),
		PipelineGrain: 8,
	}
}

// Program is a compiled SPMD program.
type Program struct {
	IR   *ir.Program
	Ctx  *cp.Context
	Sel  *cp.Selection
	Comm map[string]*comm.Analysis // per procedure
	// Reductions lists the recognized parallel reductions per procedure:
	// scalar accumulations whose iterations the CP partitions, finalized
	// with a collective combine at the loop exit (dHPF's "reduction
	// recognition", §2).
	Reductions map[string][]ReductionPlan
	Grid       *hpf.Grid
	Opt        Options
}

// ReductionPlan is one recognized parallel reduction.
type ReductionPlan struct {
	Loop *ir.Loop   // finalize at this loop's exit
	Stmt *ir.Assign // the accumulation statement
	Var  string
	Op   byte // '+' sum, '<' min, '>' max
}

// Compile parses nothing: it takes an already-parsed program, binds its
// directives under the parameter overrides, selects CPs (§2, §4, §6),
// applies selective loop distribution (§5), and runs communication
// analysis with availability elimination (§7).
func Compile(prog *ir.Program, params map[string]int, opt Options) (*Program, error) {
	bind, err := hpf.Bind(prog, params)
	if err != nil {
		return nil, err
	}
	ctx, err := cp.NewContext(prog, bind)
	if err != nil {
		return nil, err
	}
	sel, err := cp.Select(ctx, opt.CP)
	if err != nil {
		return nil, err
	}
	if opt.CP.LoopDist {
		for _, proc := range prog.Procs {
			cp.DistributeLoops(ctx, proc, sel)
		}
	}
	grid, err := ctx.Grid()
	if err != nil {
		return nil, err
	}
	out := &Program{
		IR: prog, Ctx: ctx, Sel: sel,
		Comm:       map[string]*comm.Analysis{},
		Reductions: map[string][]ReductionPlan{},
		Grid:       grid, Opt: opt,
	}
	for _, proc := range prog.Procs {
		out.Reductions[proc.Name] = planReductions(ctx, proc, sel)
		out.Comm[proc.Name] = comm.Analyze(ctx, proc, sel, opt.Comm)
	}
	return out, nil
}

// planReductions recognizes scalar reductions in each outermost loop:
// statements of the shape s = s ⊕ e whose scalar is touched nowhere else
// inside the loop and whose CP partitions the iterations.  Supported ⊕
// (sum, min, max) become ReductionPlans — each rank accumulates its
// partial and the loop exit combines them collectively.  A recognized
// reduction with an unsupported operator (product) is forced to
// replicated execution instead, preserving correctness.
func planReductions(ctx *cp.Context, proc *ir.Procedure, sel *cp.Selection) []ReductionPlan {
	var out []ReductionPlan
	for _, s := range proc.Body {
		l, ok := s.(*ir.Loop)
		if !ok {
			continue
		}
		reds := dep.FindReductions([]ir.Stmt{l})
		for _, r := range reds {
			if !scalarOnlyInReduction(l, r) {
				continue
			}
			c := sel.CPOf(r.Stmt.ID)
			if c.Replicated() {
				continue // every rank runs every iteration: already global
			}
			switch r.Op {
			case '+', '<', '>':
				out = append(out, ReductionPlan{Loop: l, Stmt: r.Stmt, Var: r.Var, Op: r.Op})
			default:
				// Unsupported combine: replicate the accumulation.
				sel.CPs[r.Stmt.ID] = &cp.CP{}
			}
		}
	}
	return out
}

// scalarOnlyInReduction checks that the reduction variable is read and
// written only by the reduction statement inside the loop.
func scalarOnlyInReduction(l *ir.Loop, r dep.Reduction) bool {
	ok := true
	ir.Walk([]ir.Stmt{l}, func(s ir.Stmt, _ []*ir.Loop) bool {
		a, isA := s.(*ir.Assign)
		if !isA || a == r.Stmt {
			return true
		}
		if a.LHS.Name == r.Var && len(a.LHS.Subs) == 0 {
			ok = false
			return false
		}
		for _, n := range ir.ScalarReads(a.RHS) {
			if n == r.Var {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// CompileSource is Compile from mini-HPF source text.
func CompileSource(src string, params map[string]int, opt Options) (*Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog, params, opt)
}

// Report renders the compilation decisions (CPs, communication events,
// notes) as text — what cmd/dhpfc prints.
func (p *Program) Report() string {
	out := fmt.Sprintf("program %s on %s%v (%d ranks)\n", p.IR.Name, p.Grid.Name, p.Grid.Shape, p.Grid.Size())
	for _, proc := range p.IR.Procs {
		out += fmt.Sprintf("\nsubroutine %s:\n", proc.Name)
		if e := p.Sel.Entry[proc.Name]; e != nil && !e.Replicated() {
			out += fmt.Sprintf("  entry CP: %s\n", e)
		}
		ir.Walk(proc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
			switch st := s.(type) {
			case *ir.Assign:
				out += fmt.Sprintf("  stmt %-3d %-40s %s\n", st.ID, st.LHS.String()+" = ...", p.Sel.CPOf(st.ID))
			case *ir.CallStmt:
				out += fmt.Sprintf("  stmt %-3d call %-35s %s\n", st.ID, st.Callee, p.Sel.CPOf(st.ID))
			}
			return true
		})
		for _, e := range p.Comm[proc.Name].Events {
			out += "  " + e.String() + p.eventVolume(proc, e) + "\n"
		}
	}
	if len(p.Sel.Notes) > 0 {
		out += "\nnotes:\n"
		for _, n := range p.Sel.Notes {
			out += "  " + n + "\n"
		}
	}
	return out
}

// eventVolume summarizes a live event's fully-vectorized transfer plan
// (messages and bytes) for the report.
func (p *Program) eventVolume(proc *ir.Procedure, e *comm.Event) string {
	if e.Eliminated {
		return ""
	}
	var plan []comm.Transfer
	if e.Kind == comm.ReadComm {
		plan = comm.ReadTransfers(p.Ctx, proc, p.Sel, []*comm.Event{e})
	} else {
		plan = comm.WriteBackTransfers(p.Ctx, proc, p.Sel, []*comm.Event{e})
	}
	if len(plan) == 0 {
		return ""
	}
	var bytes int64
	for _, t := range plan {
		bytes += t.Bytes()
	}
	return fmt.Sprintf("  [%d msgs, %d B vectorized]", len(plan), bytes)
}

// StaticFlops exposes the interpreter's per-statement flop cost so that
// hand-coded implementations of the same formulas (the NAS baselines)
// can charge identical virtual-time work.
func StaticFlops(a *ir.Assign) float64 { return flopsOf(a) }

// flopsOf statically counts the floating-point work of one execution of
// an assignment's right-hand side (plus the store).
func flopsOf(a *ir.Assign) float64 {
	var n float64
	ir.WalkExpr(a.RHS, func(e ir.Expr) {
		switch x := e.(type) {
		case *ir.Bin:
			if x.Op == '/' {
				n += 4
			} else {
				n++
			}
		case *ir.Intrinsic:
			switch x.Name {
			case "sqrt":
				n += 6
			case "exp", "sin", "cos", "log", "pow":
				n += 8
			default:
				n++
			}
		}
	})
	if n == 0 {
		n = 1 // a bare copy still costs a load/store
	}
	return n
}
