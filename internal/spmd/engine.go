package spmd

// engine.go is the compile-once/run-many execution engine: it lowers a
// compiled Program's procedure bodies into closure trees over a
// slot-indexed environment, so the per-iteration-point work of Execute
// carries no map lookups, no slice allocations, and no interface
// dispatch.  The tree-walking interpreter in exec.go remains the
// reference oracle (Program.ExecuteEngine(cfg, EngineInterp)); the
// engine's results are byte-identical to it — same array contents, same
// virtual clocks, same message counts and bytes — because it performs
// the exact same floating-point operations, flop accounting, guard
// decisions, and communication calls in the exact same order.  Only
// provably result-free work is removed:
//
//   - name → value resolution moves from per-point map lookups to
//     integer slots assigned once per Program (engineEnv);
//   - the per-point membership test against a statement's iteration set
//     becomes per-dimension bounds comparisons when the set is a single
//     box (iset.Set.AsBox), with loop ranges additionally clamped to the
//     union of member boxes for communication-free innermost loops
//     (engine_bounds.go);
//   - message payloads are packed/unpacked with bulk row copies into a
//     reused staging buffer instead of element-at-a-time gather/scatter
//     (engine_pack.go).
//
// Plan construction is total and conservative: any construct whose
// runtime behaviour the plan cannot reproduce exactly (a malformed call,
// a missing communication analysis) fails the build, and ExecuteEngine
// falls back to the interpreter for the whole run.

import (
	"fmt"
	"math"
	"sort"

	"dhpf/internal/comm"
	"dhpf/internal/ir"
)

// Engine selects Program.Execute's execution strategy.
type Engine int

const (
	// EngineCompiled is the closure-compiled engine (the default).
	EngineCompiled Engine = iota
	// EngineInterp is the original tree-walking interpreter, retained as
	// the reference oracle for differential testing.
	EngineInterp
	// EngineCodegen runs the closure engine with registered native
	// kernels (internal/codegen) replacing eligible loop nests; any nest
	// without a registered, precheck-passing kernel falls through to the
	// closures, so with an empty registry EngineCodegen ≡ EngineCompiled.
	EngineCodegen
)

func (e Engine) String() string {
	switch e {
	case EngineCompiled:
		return "compiled"
	case EngineInterp:
		return "interp"
	case EngineCodegen:
		return "codegen"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine parses an engine name as used by dhpfc -engine and the
// service's run request field.  The empty string selects the default.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "compiled":
		return EngineCompiled, nil
	case "interp":
		return EngineInterp, nil
	case "codegen":
		return EngineCodegen, nil
	}
	return 0, fmt.Errorf("spmd: unknown engine %q (want compiled, interp or codegen)", s)
}

// --- slot-indexed environment --------------------------------------------------

// engineEnv is the flat runtime environment compiled closures read and
// write.  Integer state (params, loop variables, integer formals) is
// program-global, mirroring the interpreter's shared bind map; float
// scalars and array bindings are per-frame views swapped on procedure
// entry/exit.  Invariant: ints[s] equals the interpreter's bind[name]
// when the name is bound and 0 when it is not (intSet tracks presence),
// so compiled affine evaluation matches AffExpr.EvalOr(bind, 0) exactly.
type engineEnv struct {
	ints   []int
	intSet []bool
	floats []float64 // current frame's scalar slots
	fset   []bool    // current frame's scalar presence (the fenv map's "ok")
	arrays []*array  // current frame's array slots
}

type (
	evalFn  func(*engineEnv) float64
	intFn   func(*engineEnv) int
	storeFn func(*engineEnv, float64)
	condFn  func(*engineEnv) bool
)

// --- plan representation -------------------------------------------------------

// enginePlan is the once-per-Program compiled form shared (read-only) by
// all ranks of all executions.
type enginePlan struct {
	nInts   int
	intSlot map[string]int
	procs   map[string]*procPlan
}

// procPlan is one procedure's compiled body plus its slot tables.
type procPlan struct {
	proc      *ir.Procedure
	nFloats   int
	floatSlot map[string]int
	nArrays   int
	arraySlot map[string]int
	body      []planStmt
	// guardStmts maps dense guard indices to the statement identity the
	// per-frame guard is derived from (engine_bounds.go).
	guardStmts []guardedStmt
	// clamps lists, per clampable loop, the guard indices whose boxes
	// bound the loop's useful range at the loop's nest position.
	clamps  []clampSpec
	maxNest int
}

type guardedStmt struct {
	id        int
	nestSlots []int
}

type clampSpec struct {
	pos     int   // the loop's index in each member's nest
	members []int // guard indices of all statements under the loop
}

type planStmt interface{ planStmtNode() }

type pAssign struct {
	a           *ir.Assign
	depth       int
	guardIdx    int // -1 at depth 0
	nestSlots   []int
	rhs         evalFn
	store       storeFn
	flops       float64
	readEvents  []*comm.Event // depth-0 statements only
	writeEvents []*comm.Event
}

type pCall struct {
	call      *ir.CallStmt
	callee    *ir.Procedure
	depth     int
	guardIdx  int // -1 at depth 0
	nestSlots []int
	args      []planArg
}

type planArgKind int

const (
	argAlias planArgKind = iota // whole-array actual: alias into the callee
	argInt                      // integer actual: bind[formal] = int(value)
	argIntConst
	argFloat // float actual: floatFormals[formal] = value
)

type planArg struct {
	kind     planArgKind
	formal   string
	slot     int    // int slot of formal (argInt/argIntConst)
	srcName  string // caller array name (argAlias)
	fn       evalFn // argInt / argFloat
	intConst int    // argIntConst
}

type pLoop struct {
	l           *ir.Loop
	depth       int
	varSlot     int
	lo, hi      intFn
	body        []planStmt
	pure        bool // no calls/loops/comm inside: loop vars live in slots only
	clampIdx    int  // index into frame.clamps, -1 when not clampable
	readEvents  []*comm.Event
	writeEvents []*comm.Event
	pipeEvents  []*comm.Event
	reds        []redSlot
}

type redSlot struct {
	op    byte
	fslot int
}

type pIf struct {
	cond ir.Cond
	fn   condFn
	then []planStmt
	els  []planStmt
}

func (*pAssign) planStmtNode() {}
func (*pCall) planStmtNode()   {}
func (*pLoop) planStmtNode()   {}
func (*pIf) planStmtNode()     {}

// --- plan construction ---------------------------------------------------------

// enginePlanFor returns the Program's compiled plan, building it once.
// A nil plan with a nil error never occurs; build failures surface as an
// error and the caller falls back to the interpreter.
func (p *Program) enginePlanFor() (*enginePlan, error) {
	p.engOnce.Do(func() {
		p.eng, p.engErr = buildEnginePlan(p)
	})
	return p.eng, p.engErr
}

func buildEnginePlan(p *Program) (*enginePlan, error) {
	if p.IR == nil || p.IR.Main() == nil {
		return nil, fmt.Errorf("spmd: engine: program has no procedures")
	}
	ep := &enginePlan{intSlot: map[string]int{}, procs: map[string]*procPlan{}}
	// Parameters claim their global slots first so Execute can install
	// them without consulting per-procedure tables.  Sorted: slot
	// numbers feed kernel-unit fingerprints and the emitted native
	// code, so allocation order must not depend on map iteration.
	if p.Ctx != nil && p.Ctx.Bind != nil {
		names := make([]string, 0, len(p.Ctx.Bind.Params))
		for name := range p.Ctx.Bind.Params {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ep.islot(name)
		}
	}
	for _, proc := range p.IR.Procs {
		if p.Comm[proc.Name] == nil {
			return nil, fmt.Errorf("spmd: engine: no communication analysis for %q", proc.Name)
		}
		c := &planCompiler{p: p, ep: ep, proc: proc, pp: &procPlan{
			proc:      proc,
			floatSlot: map[string]int{},
			arraySlot: map[string]int{},
		}}
		// Formals may be bound as arrays, integers or floats depending on
		// the call site; give every formal all three identities up front.
		for _, formal := range proc.Formals {
			ep.islot(formal)
			c.fslot(formal)
			c.aslot(formal)
		}
		for _, d := range proc.Decls {
			if d.Rank() > 0 {
				c.aslot(d.Name)
			} else {
				c.fslot(d.Name)
			}
		}
		body, err := c.compileStmts(proc.Body, 0, nil)
		if err != nil {
			return nil, err
		}
		c.pp.body = body
		ep.procs[proc.Name] = c.pp
	}
	return ep, nil
}

func (ep *enginePlan) islot(name string) int {
	if s, ok := ep.intSlot[name]; ok {
		return s
	}
	s := ep.nInts
	ep.intSlot[name] = s
	ep.nInts++
	return s
}

// planCompiler compiles one procedure's body.
type planCompiler struct {
	p    *Program
	ep   *enginePlan
	proc *ir.Procedure
	pp   *procPlan
}

func (c *planCompiler) fslot(name string) int {
	if s, ok := c.pp.floatSlot[name]; ok {
		return s
	}
	s := c.pp.nFloats
	c.pp.floatSlot[name] = s
	c.pp.nFloats++
	return s
}

func (c *planCompiler) aslot(name string) int {
	if s, ok := c.pp.arraySlot[name]; ok {
		return s
	}
	s := c.pp.nArrays
	c.pp.arraySlot[name] = s
	c.pp.nArrays++
	return s
}

func (c *planCompiler) nestSlots(nest []*ir.Loop) []int {
	vars := ir.NestVars(nest)
	out := make([]int, len(vars))
	for i, v := range vars {
		out[i] = c.ep.islot(v)
	}
	if len(out) > c.pp.maxNest {
		c.pp.maxNest = len(out)
	}
	return out
}

func (c *planCompiler) newGuard(id int, nestSlots []int) int {
	idx := len(c.pp.guardStmts)
	c.pp.guardStmts = append(c.pp.guardStmts, guardedStmt{id: id, nestSlots: nestSlots})
	return idx
}

func (c *planCompiler) compileStmts(stmts []ir.Stmt, depth int, nest []*ir.Loop) ([]planStmt, error) {
	var out []planStmt
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Assign:
			ps, err := c.compileAssign(st, depth, nest)
			if err != nil {
				return nil, err
			}
			out = append(out, ps)
		case *ir.CallStmt:
			ps, err := c.compileCall(st, depth, nest)
			if err != nil {
				return nil, err
			}
			out = append(out, ps)
		case *ir.Loop:
			ps, err := c.compileLoop(st, depth, nest)
			if err != nil {
				return nil, err
			}
			out = append(out, ps)
		case *ir.IfStmt:
			then, err := c.compileStmts(st.Then, depth, nest)
			if err != nil {
				return nil, err
			}
			els, err := c.compileStmts(st.Else, depth, nest)
			if err != nil {
				return nil, err
			}
			out = append(out, &pIf{cond: st.Cond, fn: c.compileCond(st.Cond), then: then, els: els})
			// Other statement kinds are ignored, as in execStmts.
		}
	}
	return out, nil
}

func (c *planCompiler) compileAssign(a *ir.Assign, depth int, nest []*ir.Loop) (*pAssign, error) {
	ps := &pAssign{
		a:        a,
		depth:    depth,
		guardIdx: -1,
		rhs:      c.compileExpr(a.RHS),
		store:    c.compileStore(a.LHS),
		flops:    flopsOf(a),
	}
	if depth == 0 {
		ps.readEvents = staticEventsAt(c.p.Comm[c.proc.Name], a, comm.ReadComm)
		ps.writeEvents = staticEventsAt(c.p.Comm[c.proc.Name], a, comm.WriteBack)
	} else {
		ps.nestSlots = c.nestSlots(nest)
		ps.guardIdx = c.newGuard(a.ID, ps.nestSlots)
	}
	return ps, nil
}

func (c *planCompiler) compileCall(call *ir.CallStmt, depth int, nest []*ir.Loop) (*pCall, error) {
	callee := c.p.IR.Proc(call.Callee)
	if callee == nil {
		return nil, fmt.Errorf("spmd: engine: call to undefined procedure %q", call.Callee)
	}
	if len(call.Args) != len(callee.Formals) {
		return nil, fmt.Errorf("spmd: engine: call to %q has %d args for %d formals",
			call.Callee, len(call.Args), len(callee.Formals))
	}
	ps := &pCall{call: call, callee: callee, depth: depth, guardIdx: -1}
	if depth > 0 {
		ps.nestSlots = c.nestSlots(nest)
		ps.guardIdx = c.newGuard(call.ID, ps.nestSlots)
	}
	for k, formal := range callee.Formals {
		pa := planArg{formal: formal}
		switch arg := call.Args[k].(type) {
		case *ir.ArrayRef:
			if len(arg.Subs) == 0 {
				pa.kind = argAlias
				pa.srcName = arg.Name
			} else {
				pa.kind = argFloat
				pa.fn = c.compileExpr(arg)
			}
		case ir.IndexRef, ir.ParamRef:
			pa.kind = argInt
			pa.slot = c.ep.islot(formal)
			pa.fn = c.compileExpr(arg)
		case ir.FloatConst:
			if float64(int(arg.Val)) == arg.Val {
				pa.kind = argIntConst
				pa.slot = c.ep.islot(formal)
				pa.intConst = int(arg.Val)
			} else {
				v := arg.Val
				pa.kind = argFloat
				pa.fn = func(*engineEnv) float64 { return v }
			}
		default:
			pa.kind = argFloat
			pa.fn = c.compileExpr(arg)
		}
		ps.args = append(ps.args, pa)
	}
	return ps, nil
}

func (c *planCompiler) compileLoop(l *ir.Loop, depth int, nest []*ir.Loop) (*pLoop, error) {
	body, err := c.compileStmts(l.Body, depth+1, append(nest, l))
	if err != nil {
		return nil, err
	}
	an := c.p.Comm[c.proc.Name]
	pl := &pLoop{
		l:           l,
		depth:       depth,
		varSlot:     c.ep.islot(l.Var),
		lo:          c.compileAff(l.Lo),
		hi:          c.compileAff(l.Hi),
		body:        body,
		clampIdx:    -1,
		readEvents:  staticEventsBeforeLoop(an, l, depth, comm.ReadComm),
		writeEvents: staticEventsBeforeLoop(an, l, depth, comm.WriteBack),
		pipeEvents:  staticPipelinedEvents(an, l),
	}
	for _, r := range c.p.Reductions[c.proc.Name] {
		if r.Loop == l {
			pl.reds = append(pl.reds, redSlot{op: r.Op, fslot: c.fslot(r.Var)})
		}
	}
	// A loop whose body holds only (possibly if-guarded) assignments has
	// no communication boundaries, calls or bind-map readers inside: its
	// variable can live in slots alone.  If additionally every if
	// condition in the body is panic-free, skipped iterations are fully
	// unobservable, so the range can be clamped to the union of the
	// statements' iteration boxes (engine_bounds.go).
	if members, pureOK, clampOK := pureMembers(body); pureOK {
		pl.pure = true
		if clampOK {
			pl.clampIdx = len(c.pp.clamps)
			c.pp.clamps = append(c.pp.clamps, clampSpec{pos: depth, members: members})
		}
	}
	return pl, nil
}

// pureMembers reports whether the compiled body contains only assigns
// and ifs (recursively), returning the guard indices of every assign.
// The third result additionally requires every if condition to be
// panic-free: the interpreter evaluates conditions even on iterations
// whose statements are all guarded out, so clamping such iterations away
// is only sound when that evaluation cannot be observed.
func pureMembers(body []planStmt) (members []int, pure, clampOK bool) {
	members, clampOK = nil, true
	for _, s := range body {
		switch st := s.(type) {
		case *pAssign:
			members = append(members, st.guardIdx)
		case *pIf:
			if !condPanicFree(st.cond) {
				clampOK = false
			}
			a, ok, aClamp := pureMembers(st.then)
			if !ok {
				return nil, false, false
			}
			b, ok, bClamp := pureMembers(st.els)
			if !ok {
				return nil, false, false
			}
			clampOK = clampOK && aClamp && bClamp
			members = append(members, a...)
			members = append(members, b...)
		default:
			return nil, false, false
		}
	}
	return members, true, clampOK
}

func condPanicFree(c ir.Cond) bool {
	switch c.Op {
	case "<", ">", "<=", ">=", "==", "/=":
		return exprPanicFree(c.L) && exprPanicFree(c.R)
	}
	return false
}

// exprPanicFree reports whether evaluating the expression can never
// panic: no array reads (bounds), no non-canonical intrinsic arities, no
// unknown node kinds.
func exprPanicFree(e ir.Expr) bool {
	switch x := e.(type) {
	case ir.FloatConst, ir.IndexRef, ir.ParamRef, ir.ScalarRef:
		return true
	case *ir.Bin:
		switch x.Op {
		case '+', '-', '*', '/':
			return exprPanicFree(x.L) && exprPanicFree(x.R)
		}
		return false
	case *ir.Intrinsic:
		switch x.Name {
		case "sqrt", "exp", "sin", "cos", "log", "abs":
			if len(x.Args) != 1 {
				return false
			}
		case "min", "max", "mod", "pow":
			if len(x.Args) != 2 {
				return false
			}
		default:
			return false
		}
		for _, a := range x.Args {
			if !exprPanicFree(a) {
				return false
			}
		}
		return true
	}
	return false
}

// --- static event selection ----------------------------------------------------
//
// These mirror eventsAt / eventsBeforeLoop / pipelinedEvents in exec.go
// exactly; they are hoisted to plan-build time because their inputs (the
// analysis event list, the loop identity, the nest depth) are all static.

func staticEventsAt(an *comm.Analysis, stmt *ir.Assign, kind comm.Kind) []*comm.Event {
	var out []*comm.Event
	for _, e := range an.Events {
		if e.Kind != kind || e.Eliminated || e.Pipelined {
			continue
		}
		if e.Stmt == stmt && len(e.Nest) == 0 {
			out = append(out, e)
		}
	}
	return out
}

func staticEventsBeforeLoop(an *comm.Analysis, l *ir.Loop, depth int, kind comm.Kind) []*comm.Event {
	var out []*comm.Event
	for _, e := range an.Events {
		if e.Kind != kind || e.Eliminated || e.Pipelined {
			continue
		}
		d := min(e.Depth, len(e.Nest)-1)
		if d < 0 {
			continue
		}
		if d == depth && e.Nest[d] == l {
			out = append(out, e)
		}
	}
	return out
}

func staticPipelinedEvents(an *comm.Analysis, l *ir.Loop) []*comm.Event {
	var out []*comm.Event
	for _, e := range an.Events {
		if e.Pipelined && !e.Eliminated && e.CarriedBy == l {
			out = append(out, e)
		}
	}
	return out
}

// --- expression compilation ----------------------------------------------------

// compileAff lowers an affine expression to slots; unbound names read 0,
// matching AffExpr.EvalOr(bind, 0).
func (c *planCompiler) compileAff(a ir.AffExpr) intFn {
	cst := a.Const
	if len(a.Terms) == 0 {
		return func(*engineEnv) int { return cst }
	}
	if len(a.Terms) == 1 {
		coef, slot := a.Terms[0].Coef, c.ep.islot(a.Terms[0].Name)
		return func(e *engineEnv) int { return cst + coef*e.ints[slot] }
	}
	type term struct{ coef, slot int }
	ts := make([]term, len(a.Terms))
	for i, t := range a.Terms {
		ts[i] = term{coef: t.Coef, slot: c.ep.islot(t.Name)}
	}
	return func(e *engineEnv) int {
		v := cst
		for _, t := range ts {
			v += t.coef * e.ints[t.slot]
		}
		return v
	}
}

// compileSub lowers one subscript Coef*Var + Off.
func (c *planCompiler) compileSub(s ir.Subscript) intFn {
	off := c.compileAff(s.Off)
	if s.Var == "" {
		return off
	}
	coef, slot := s.Coef, c.ep.islot(s.Var)
	return func(e *engineEnv) int { return coef*e.ints[slot] + off(e) }
}

// compileExpr lowers an RHS expression to a closure tree that performs
// the same floating-point operations in the same order as rankExec.eval,
// including its panics.
func (c *planCompiler) compileExpr(expr ir.Expr) evalFn {
	switch x := expr.(type) {
	case ir.FloatConst:
		v := x.Val
		return func(*engineEnv) float64 { return v }
	case ir.IndexRef:
		slot := c.ep.islot(x.Name)
		return func(e *engineEnv) float64 { return float64(e.ints[slot]) }
	case ir.ParamRef:
		slot := c.ep.islot(x.Name)
		return func(e *engineEnv) float64 { return float64(e.ints[slot]) }
	case ir.ScalarRef:
		fs, is := c.fslot(x.Name), c.ep.islot(x.Name)
		return func(e *engineEnv) float64 {
			if e.fset[fs] {
				return e.floats[fs]
			}
			if e.intSet[is] {
				return float64(e.ints[is]) // integer formal read as a value
			}
			return 0
		}
	case *ir.ArrayRef:
		return c.compileArrayRead(x)
	case *ir.Bin:
		l, r := c.compileExpr(x.L), c.compileExpr(x.R)
		switch x.Op {
		case '+':
			return func(e *engineEnv) float64 { return l(e) + r(e) }
		case '-':
			return func(e *engineEnv) float64 { return l(e) - r(e) }
		case '*':
			return func(e *engineEnv) float64 { return l(e) * r(e) }
		case '/':
			return func(e *engineEnv) float64 { return l(e) / r(e) }
		}
		// Unknown operator: evaluate both sides (for identical panic
		// order), then fail exactly like the interpreter.
		return func(e *engineEnv) float64 {
			l(e)
			r(e)
			panic(fmt.Sprintf("spmd: cannot evaluate %v", expr))
		}
	case *ir.Intrinsic:
		return c.compileIntrinsic(x)
	}
	return func(*engineEnv) float64 { panic(fmt.Sprintf("spmd: cannot evaluate %v", expr)) }
}

func (c *planCompiler) compileIntrinsic(x *ir.Intrinsic) evalFn {
	fns := make([]evalFn, len(x.Args))
	for i, a := range x.Args {
		fns[i] = c.compileExpr(a)
	}
	// Canonical arities specialize to allocation-free closures; anything
	// else falls back to the interpreter-shaped generic path so argument
	// evaluation order, extra-argument evaluation, and arity panics stay
	// identical.
	if len(fns) == 1 {
		a0 := fns[0]
		switch x.Name {
		case "sqrt":
			return func(e *engineEnv) float64 { return math.Sqrt(a0(e)) }
		case "exp":
			return func(e *engineEnv) float64 { return math.Exp(a0(e)) }
		case "sin":
			return func(e *engineEnv) float64 { return math.Sin(a0(e)) }
		case "cos":
			return func(e *engineEnv) float64 { return math.Cos(a0(e)) }
		case "log":
			return func(e *engineEnv) float64 { return math.Log(a0(e)) }
		case "abs":
			return func(e *engineEnv) float64 { return math.Abs(a0(e)) }
		}
	}
	if len(fns) == 2 {
		a0, a1 := fns[0], fns[1]
		switch x.Name {
		case "min":
			return func(e *engineEnv) float64 { return math.Min(a0(e), a1(e)) }
		case "max":
			return func(e *engineEnv) float64 { return math.Max(a0(e), a1(e)) }
		case "mod":
			return func(e *engineEnv) float64 { return math.Mod(a0(e), a1(e)) }
		case "pow":
			return func(e *engineEnv) float64 { return math.Pow(a0(e), a1(e)) }
		}
	}
	name := x.Name
	return func(e *engineEnv) float64 {
		args := make([]float64, len(fns))
		for i, fn := range fns {
			args[i] = fn(e)
		}
		switch name {
		case "sqrt":
			return math.Sqrt(args[0])
		case "exp":
			return math.Exp(args[0])
		case "sin":
			return math.Sin(args[0])
		case "cos":
			return math.Cos(args[0])
		case "log":
			return math.Log(args[0])
		case "abs":
			return math.Abs(args[0])
		case "min":
			return math.Min(args[0], args[1])
		case "max":
			return math.Max(args[0], args[1])
		case "mod":
			return math.Mod(args[0], args[1])
		case "pow":
			return math.Pow(args[0], args[1])
		}
		panic(fmt.Sprintf("spmd: cannot evaluate %v", x))
	}
}

// compileArrayRead lowers an array element read: direct *array access
// with the offset accumulated dimension by dimension, bounds-checked
// like array.off (same panic, raised at the same first violating
// dimension).
func (c *planCompiler) compileArrayRead(x *ir.ArrayRef) evalFn {
	as := c.aslot(x.Name)
	subs := make([]intFn, len(x.Subs))
	for k, s := range x.Subs {
		subs[k] = c.compileSub(s)
	}
	name := x.Name
	return func(e *engineEnv) float64 {
		arr := e.arrays[as]
		if arr == nil {
			panic(fmt.Sprintf("spmd: read of undeclared array %q", name))
		}
		off := 0
		for k, sf := range subs {
			v := sf(e)
			if v < arr.lo[k] || v > arr.hi[k] {
				panic(oobMessage(arr, subs, e))
			}
			off += (v - arr.lo[k]) * arr.stride[k]
		}
		return arr.data[off]
	}
}

// compileStore lowers the LHS of an assignment.
func (c *planCompiler) compileStore(lhs *ir.ArrayRef) storeFn {
	if len(lhs.Subs) == 0 {
		fs := c.fslot(lhs.Name)
		return func(e *engineEnv, v float64) {
			e.floats[fs] = v
			e.fset[fs] = true
		}
	}
	as := c.aslot(lhs.Name)
	subs := make([]intFn, len(lhs.Subs))
	for k, s := range lhs.Subs {
		subs[k] = c.compileSub(s)
	}
	name := lhs.Name
	return func(e *engineEnv, v float64) {
		arr := e.arrays[as]
		if arr == nil {
			panic(fmt.Sprintf("spmd: store to undeclared array %q", name))
		}
		off := 0
		for k, sf := range subs {
			p := sf(e)
			if p < arr.lo[k] || p > arr.hi[k] {
				panic(oobMessage(arr, subs, e))
			}
			off += (p - arr.lo[k]) * arr.stride[k]
		}
		arr.data[off] = v
	}
}

// oobMessage reproduces array.off's panic text (cold path only).
func oobMessage(arr *array, subs []intFn, e *engineEnv) string {
	p := make([]int, len(subs))
	for k, sf := range subs {
		p[k] = sf(e)
	}
	return fmt.Sprintf("spmd: %s%v out of bounds [%v:%v]", arr.name, p, arr.lo, arr.hi)
}

func (c *planCompiler) compileCond(cond ir.Cond) condFn {
	l, r := c.compileExpr(cond.L), c.compileExpr(cond.R)
	switch cond.Op {
	case "<":
		return func(e *engineEnv) bool { return l(e) < r(e) }
	case ">":
		return func(e *engineEnv) bool { return l(e) > r(e) }
	case "<=":
		return func(e *engineEnv) bool { return l(e) <= r(e) }
	case ">=":
		return func(e *engineEnv) bool { return l(e) >= r(e) }
	case "==":
		return func(e *engineEnv) bool { return l(e) == r(e) }
	case "/=":
		return func(e *engineEnv) bool { return l(e) != r(e) }
	}
	op := cond.Op
	return func(e *engineEnv) bool {
		l(e)
		r(e)
		panic(fmt.Sprintf("spmd: unknown comparison %q", op))
	}
}

// --- engine execution ----------------------------------------------------------

// pushPlanFrame installs a frame's slot views into the rank environment
// and derives the per-frame guards and clamps from the freshly computed
// iteration sets.
func (rx *rankExec) pushPlanFrame(f *frame, pp *procPlan, floatFormals map[string]float64) {
	f.plan = pp
	f.floats = make([]float64, pp.nFloats)
	f.fset = make([]bool, pp.nFloats)
	f.aslots = make([]*array, pp.nArrays)
	for name, idx := range pp.arraySlot {
		f.aslots[idx] = f.arrays[name]
	}
	for name, v := range floatFormals {
		if idx, ok := pp.floatSlot[name]; ok {
			f.floats[idx] = v
			f.fset[idx] = true
		}
	}
	f.point = make([]int, pp.maxNest)
	rx.buildGuards(f, pp)
	f.savedFloats, f.savedFset, f.savedArrays = rx.env.floats, rx.env.fset, rx.env.arrays
	rx.env.floats, rx.env.fset, rx.env.arrays = f.floats, f.fset, f.aslots
}

func (rx *rankExec) popPlanFrame(f *frame) {
	rx.env.floats, rx.env.fset, rx.env.arrays = f.savedFloats, f.savedFset, f.savedArrays
}

func (rx *rankExec) execPlanStmts(proc *ir.Procedure, stmts []planStmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *pAssign:
			rx.execPlanAssign(proc, st)
		case *pCall:
			rx.execPlanCall(proc, st)
		case *pLoop:
			rx.execPlanLoop(proc, st)
		case *pIf:
			if st.fn(&rx.env) {
				rx.execPlanStmts(proc, st.then)
			} else {
				rx.execPlanStmts(proc, st.els)
			}
		}
	}
}

// planGuardPass is the compiled counterpart of the interpreter's
// per-point membership test (point slice + iset.Contains): box-shaped
// iteration sets reduce to per-dimension comparisons on slot values.
func (rx *rankExec) planGuardPass(guardIdx int, nestSlots []int) bool {
	f := rx.top()
	g := &f.guards[guardIdx]
	switch g.kind {
	case guardNever:
		return false
	case guardBox:
		for k, sl := range nestSlots {
			if v := rx.env.ints[sl]; v < g.lo[k] || v > g.hi[k] {
				return false
			}
		}
		return true
	default: // guardSet
		pt := f.point[:len(nestSlots)]
		for k, sl := range nestSlots {
			pt[k] = rx.env.ints[sl]
		}
		return g.set.Contains(pt)
	}
}

func (rx *rankExec) execPlanAssign(proc *ir.Procedure, sp *pAssign) {
	if sp.depth == 0 {
		rx.fireEvents(proc, sp.readEvents, 0)
		if rx.ownsTopLevel(proc, sp.a.ID) {
			v := sp.rhs(&rx.env)
			rx.flops += sp.flops
			sp.store(&rx.env, v)
		}
		rx.fireEvents(proc, sp.writeEvents, 0)
		return
	}
	if !rx.planGuardPass(sp.guardIdx, sp.nestSlots) {
		return
	}
	v := sp.rhs(&rx.env)
	rx.flops += sp.flops
	sp.store(&rx.env, v)
}

func (rx *rankExec) execPlanCall(proc *ir.Procedure, pc *pCall) {
	if pc.depth == 0 {
		if !rx.ownsTopLevel(proc, pc.call.ID) {
			return
		}
	} else if !rx.planGuardPass(pc.guardIdx, pc.nestSlots) {
		return
	}
	f := rx.top()
	actualArrays := map[string]*array{}
	floatFormals := map[string]float64{}
	type savedInt struct {
		name     string
		slot     int
		val      int
		had      bool
		slotVal  int
		slotport bool
	}
	var saved []savedInt
	bindInt := func(a *planArg, v int) {
		old, had := rx.bind[a.formal]
		saved = append(saved, savedInt{
			name: a.formal, slot: a.slot, val: old, had: had,
			slotVal: rx.env.ints[a.slot], slotport: rx.env.intSet[a.slot],
		})
		rx.bind[a.formal] = v
		rx.env.ints[a.slot] = v
		rx.env.intSet[a.slot] = true
	}
	for i := range pc.args {
		a := &pc.args[i]
		switch a.kind {
		case argAlias:
			actualArrays[a.formal] = f.arrays[a.srcName]
		case argInt:
			bindInt(a, int(a.fn(&rx.env)))
		case argIntConst:
			bindInt(a, a.intConst)
		case argFloat:
			floatFormals[a.formal] = a.fn(&rx.env)
		}
	}
	rx.runProc(pc.callee, actualArrays, floatFormals)
	for i := len(saved) - 1; i >= 0; i-- {
		s := saved[i]
		if s.had {
			rx.bind[s.name] = s.val
		} else {
			delete(rx.bind, s.name)
		}
		if s.slotport {
			rx.env.ints[s.slot] = s.slotVal
			rx.env.intSet[s.slot] = true
		} else {
			rx.env.ints[s.slot] = 0
			rx.env.intSet[s.slot] = false
		}
	}
}

func (rx *rankExec) execPlanLoop(proc *ir.Procedure, pl *pLoop) {
	rx.fireEvents(proc, pl.readEvents, pl.depth)

	var s0 []float64
	if len(pl.reds) > 0 {
		s0 = make([]float64, len(pl.reds))
		for i, r := range pl.reds {
			s0[i] = rx.env.floats[r.fslot]
		}
	}

	if len(pl.pipeEvents) > 0 {
		rx.execPipelined(proc, pl.l, pl.depth, pl.pipeEvents, func() { rx.iteratePlanLoop(proc, pl) })
	} else {
		rx.iteratePlanLoop(proc, pl)
	}

	for i, r := range pl.reds {
		rx.flushFlops()
		v := rx.env.floats[r.fslot]
		switch r.op {
		case '+':
			rx.env.floats[r.fslot] = s0[i] + rx.allReduce('+', v-s0[i])
		default: // '<' min, '>' max: every rank's partial includes s0
			rx.env.floats[r.fslot] = rx.allReduce(r.op, v)
		}
		rx.env.fset[r.fslot] = true
	}

	rx.fireEvents(proc, pl.writeEvents, pl.depth)
}

// iteratePlanLoop is the compiled iterateLoop: bounds come from compiled
// affine closures, the range is clamped by the active strip and (for
// pure loops) by the hoisted union of member iteration boxes, and the
// loop variable is maintained in its slot — plus the bind map only when
// something inside the loop can read it.
func (rx *rankExec) iteratePlanLoop(proc *ir.Procedure, pl *pLoop) {
	if rx.kernels != nil {
		// EngineCodegen: a registered native kernel replaces the whole
		// closure walk when its precheck holds (kernel_invoke.go).  This
		// covers both direct and pipelined (per-strip) invocations.
		if bk := rx.kernels[pl]; bk != nil && rx.runKernel(bk) {
			return
		}
	}
	e := &rx.env
	lo := pl.lo(e)
	hi := pl.hi(e)
	l := pl.l
	if rx.strip != nil && rx.strip.variable == l.Var {
		if l.Step > 0 {
			lo, hi = max(lo, rx.strip.lo), min(hi, rx.strip.hi)
		} else {
			lo, hi = min(lo, rx.strip.hi), max(hi, rx.strip.lo)
		}
	}
	if pl.clampIdx >= 0 {
		c := &rx.top().clamps[pl.clampIdx]
		if l.Step > 0 {
			lo, hi = max(lo, c.lo), min(hi, c.hi)
		} else {
			lo, hi = min(lo, c.hi), max(hi, c.lo)
		}
	}
	vs := pl.varSlot
	oldV, oldSet := e.ints[vs], e.intSet[vs]
	if pl.pure {
		if l.Step > 0 {
			for v := lo; v <= hi; v++ {
				e.ints[vs] = v
				e.intSet[vs] = true
				rx.execPlanStmts(proc, pl.body)
			}
		} else {
			for v := lo; v >= hi; v-- {
				e.ints[vs] = v
				e.intSet[vs] = true
				rx.execPlanStmts(proc, pl.body)
			}
		}
	} else {
		oldB, hadB := rx.bind[l.Var]
		if l.Step > 0 {
			for v := lo; v <= hi; v++ {
				e.ints[vs] = v
				e.intSet[vs] = true
				rx.bind[l.Var] = v
				rx.execPlanStmts(proc, pl.body)
			}
		} else {
			for v := lo; v >= hi; v-- {
				e.ints[vs] = v
				e.intSet[vs] = true
				rx.bind[l.Var] = v
				rx.execPlanStmts(proc, pl.body)
			}
		}
		if hadB {
			rx.bind[l.Var] = oldB
		} else {
			delete(rx.bind, l.Var)
		}
	}
	if oldSet {
		e.ints[vs] = oldV
		e.intSet[vs] = true
	} else {
		e.ints[vs] = 0
		e.intSet[vs] = false
	}
}
