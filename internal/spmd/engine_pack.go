package spmd

// engine_pack.go is the bulk message marshalling used by doTransfers and
// the pipelined send/recv paths: instead of gathering and scattering one
// element per iset point through array.get/array.set, transfer sets are
// walked box by box and moved with contiguous last-dimension row copies.
// The element order is exactly iset.Set.Each's canonical order (sorted
// boxes, lexicographic within a box, last dimension fastest), so sender
// and receiver agree and payload contents stay byte-identical to the
// element-wise interpreter path.  Boxes that cannot be row-copied (rank
// mismatch with the array, out-of-bounds points, zero rank) fall back to
// the element-wise walk, preserving the interpreter's panics exactly.

import "dhpf/internal/iset"

// rowCopyable reports whether the box can be transferred with direct row
// copies on arr: every point in bounds and the last dimension unit-stride
// (always true for newArray storage, checked for robustness).
func rowCopyable(b iset.Box, arr *array) bool {
	r := b.Rank()
	if arr == nil || r == 0 || len(arr.lo) != r || arr.stride[r-1] != 1 {
		return false
	}
	for k := 0; k < r; k++ {
		if b.Lo[k] < arr.lo[k] || b.Hi[k] > arr.hi[k] {
			return false
		}
	}
	return true
}

// packPayload appends the set's elements of arr to buf in canonical
// order and returns the extended buffer.
func packPayload(buf []float64, arr *array, s iset.Set) []float64 {
	for _, b := range s.Boxes() {
		if !rowCopyable(b, arr) {
			b.Each(func(p []int) bool {
				buf = append(buf, arr.get(p))
				return true
			})
			continue
		}
		r := b.Rank()
		w := b.Hi[r-1] - b.Lo[r-1] + 1
		p := make([]int, r)
		copy(p, b.Lo)
		for {
			off := 0
			for k := 0; k < r; k++ {
				off += (p[k] - arr.lo[k]) * arr.stride[k]
			}
			buf = append(buf, arr.data[off:off+w]...)
			k := r - 2
			for ; k >= 0; k-- {
				p[k]++
				if p[k] <= b.Hi[k] {
					break
				}
				p[k] = b.Lo[k]
			}
			if k < 0 {
				break
			}
		}
	}
	return buf
}

// unpackPayload scatters data (packed by packPayload's order) into arr
// over the set's elements.
func unpackPayload(data []float64, arr *array, s iset.Set) {
	j := 0
	for _, b := range s.Boxes() {
		if !rowCopyable(b, arr) {
			b.Each(func(p []int) bool {
				arr.set(p, data[j])
				j++
				return true
			})
			continue
		}
		r := b.Rank()
		w := b.Hi[r-1] - b.Lo[r-1] + 1
		p := make([]int, r)
		copy(p, b.Lo)
		for {
			off := 0
			for k := 0; k < r; k++ {
				off += (p[k] - arr.lo[k]) * arr.stride[k]
			}
			copy(arr.data[off:off+w], data[j:j+w])
			j += w
			k := r - 2
			for ; k >= 0; k-- {
				p[k]++
				if p[k] <= b.Hi[k] {
					break
				}
				p[k] = b.Lo[k]
			}
			if k < 0 {
				break
			}
		}
	}
}
