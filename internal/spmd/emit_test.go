package spmd

import (
	"strings"
	"testing"
)

const emitSrc = `
program em
param N = 32
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ align f with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  real f(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      a(i,j) = 0.01*i + 0.02*j
      b(i,j) = 0.0
      f(i,j) = 0.0
    enddo
  enddo
  do j = 1, N-2
    do i = 1, N-2
      b(i,j) = a(i,j-1) + a(i,j+1)
    enddo
  enddo
  do j = 1, N-4
    do i = 1, N-2
      f(i,j) = 0.08 / a(i,j)
      b(i,j+1) = b(i,j+1) - f(i,j)*b(i,j)
      b(i,j+2) = b(i,j+2) - 0.5*f(i,j)*b(i,j)
    enddo
  enddo
end
`

func TestEmitNodeProgram(t *testing.T) {
	prog, err := CompileSource(emitSrc, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := prog.EmitNodeProgram(1)
	for _, want := range []string{
		"SPMD node program for rank 1 of 4",
		"subroutine main()",
		"! owns [0:31, 8:15]",    // rank 1's block
		"mpi_isend", "mpi_irecv", // stencil halo exchange
		"coarse-grain pipelined wavefront on j", // the sweep
		"do j = max(1, ",                        // localized bounds
		"enddo",
		"end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("emitted program missing %q\n%s", want, out)
		}
	}
}

func TestEmitDiffersPerRank(t *testing.T) {
	prog, err := CompileSource(emitSrc, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r0 := prog.EmitNodeProgram(0)
	r3 := prog.EmitNodeProgram(3)
	if r0 == r3 {
		t.Fatal("node programs for different ranks are identical")
	}
	// Rank 0 owns the low block, rank 3 the high block.
	if !strings.Contains(r0, "owns [0:31, 0:7]") {
		t.Errorf("rank 0 ownership comment wrong:\n%s", r0[:400])
	}
	if !strings.Contains(r3, "owns [0:31, 24:31]") {
		t.Errorf("rank 3 ownership comment wrong")
	}
}

func TestEmitInterproceduralGuard(t *testing.T) {
	src := `
program emc
param N = 16
!hpf$ processors procs(2, 2)
!hpf$ template tm(N, N, N)
!hpf$ align w with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine line(v, jj, kk)
  real v(0:N-1, 0:N-1, 0:N-1)
  do i = 0, N-1
    v(i, jj, kk) = v(i, jj, kk) * 2.0
  enddo
end

subroutine main()
  real w(0:N-1, 0:N-1, 0:N-1)
  do k = 0, N-1
    do j = 0, N-1
      do i = 0, N-1
        w(i,j,k) = 1.0*i + j + k
      enddo
    enddo
  enddo
  do k = 0, N-1
    do j = 0, N-1
      call line(w, j, k)
    enddo
  enddo
end
`
	prog, err := CompileSource(src, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := prog.EmitNodeProgram(0)
	if !strings.Contains(out, "call line(w, j, k)") {
		t.Errorf("call not emitted:\n%s", out)
	}
	if !strings.Contains(out, "subroutine line(v, jj, kk)") {
		t.Error("callee not emitted")
	}
}
