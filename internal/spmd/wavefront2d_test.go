package spmd

import "testing"

// TestDiagonalWavefront2D: an LU/SSOR-style sweep carrying dependences
// along BOTH distributed dimensions (j and k).  The outer pipeline
// strips the undistributed i dimension; the inner pipeline runs
// block-serialized within each strip.  Results must match serial.
func TestDiagonalWavefront2D(t *testing.T) {
	src := `
program lu2d
param N = 20
param P1 = 2
param P2 = 2
!hpf$ processors procs(P1, P2)
!hpf$ template tm(N, N, N)
!hpf$ align v with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine main()
  real v(0:N-1, 0:N-1, 0:N-1)
  do k = 0, N-1
    do j = 0, N-1
      do i = 0, N-1
        v(i,j,k) = 1.0 + 0.01*i + 0.02*j + 0.03*k
      enddo
    enddo
  enddo
  ! lower-triangular (SSOR-like) sweep: depends on j-1 and k-1
  do j = 1, N-1
    do k = 1, N-1
      do i = 1, N-2
        v(i,j,k) = v(i,j,k) + 0.3*v(i,j-1,k) + 0.2*v(i,j,k-1)
      enddo
    enddo
  enddo
  ! upper-triangular sweep: depends on j+1 and k+1
  do j = N-2, 0, -1
    do k = N-2, 0, -1
      do i = 1, N-2
        v(i,j,k) = v(i,j,k) + 0.15*v(i,j+1,k) + 0.1*v(i,j,k+1)
      enddo
    enddo
  enddo
end
`
	_, res := compareWithSerial(t, src, 4, []string{"v"})
	if res.Machine.TotalMessages() == 0 {
		t.Error("2-D wavefront must communicate")
	}
}

// TestDiagonalWavefront2DRect checks a non-square grid too.
func TestDiagonalWavefront2DRect(t *testing.T) {
	src := `
program lu2db
param N = 18
param P1 = 3
param P2 = 2
!hpf$ processors procs(P1, P2)
!hpf$ template tm(N, N, N)
!hpf$ align v with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine main()
  real v(0:N-1, 0:N-1, 0:N-1)
  do k = 0, N-1
    do j = 0, N-1
      do i = 0, N-1
        v(i,j,k) = 0.5 + 0.003*(i + 2*j + 5*k)
      enddo
    enddo
  enddo
  do j = 1, N-1
    do k = 1, N-1
      do i = 1, N-2
        v(i,j,k) = v(i,j,k) + 0.3*v(i,j-1,k) + 0.2*v(i,j,k-1)
      enddo
    enddo
  enddo
end
`
	compareWithSerial(t, src, 6, []string{"v"})
}
