package spmd

import (
	"math"
	"testing"

	"dhpf/internal/mpsim"
	"dhpf/internal/parser"
)

func testMachine(p int) mpsim.Config {
	return mpsim.Config{
		Procs:        p,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
		Latency:      10e-6,
		GapPerByte:   1e-8,
		FlopTime:     1e-8,
	}
}

// compareWithSerial compiles src, executes on the simulated machine, and
// checks every listed array against the serial reference.
func compareWithSerial(t *testing.T, src string, procs int, arrays []string) (*Program, *ExecResult) {
	t.Helper()
	prog, err := CompileSource(src, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Execute(testMachine(procs))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunSerial(parser.MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range arrays {
		got, _, _, err := res.Global(name)
		if err != nil {
			t.Fatal(err)
		}
		want, _, _, err := ref.Array(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("%s[%d] = %g, serial %g", name, i, got[i], want[i])
			}
		}
	}
	return prog, res
}

func TestJacobiStencil1D(t *testing.T) {
	src := `
program jacobi
param N = 64
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      a(i,j) = 0.01 * i + 0.02 * j
      b(i,j) = 0.0
    enddo
  enddo
  do t = 1, 3
    do j = 1, N-2
      do i = 1, N-2
        b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
      enddo
    enddo
    do j = 1, N-2
      do i = 1, N-2
        a(i,j) = b(i,j)
      enddo
    enddo
  enddo
end
`
	_, res := compareWithSerial(t, src, 4, []string{"a", "b"})
	if res.Machine.TotalMessages() == 0 {
		t.Error("expected boundary exchange messages")
	}
}

func TestJacobiStencil2DGrid(t *testing.T) {
	src := `
program jacobi2d
param N = 32
!hpf$ processors procs(2, 2)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(BLOCK, BLOCK) onto procs

subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      a(i,j) = 0.5 * i - 0.25 * j
    enddo
  enddo
  do j = 1, N-2
    do i = 1, N-2
      b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
    enddo
  enddo
end
`
	compareWithSerial(t, src, 4, []string{"b"})
}

func TestNewPrivatizableLhsy(t *testing.T) {
	src := `
program lhsy
param N = 32
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align lhs with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real lhs(0:N-1, 0:N-1)
  real cv(0:N-1)
  real rhoq(0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      lhs(i,j) = 0.0
    enddo
  enddo
  !hpf$ independent, new(cv, rhoq)
  do i = 1, N-2
    do j = 0, N-1
      cv(j) = 0.1 * j + 0.01 * i
      rhoq(j) = 0.2 * j
    enddo
    do j = 1, N-2
      lhs(i,j) = cv(j-1) + rhoq(j) + cv(j+1)
    enddo
  enddo
end
`
	_, res := compareWithSerial(t, src, 4, []string{"lhs"})
	// §4.1's goal: no messages at all for this loop (privatizables are
	// partially replicated, lhs is owner-computed).
	if res.Machine.TotalMessages() != 0 {
		t.Errorf("NEW propagation should eliminate all communication, got %d msgs",
			res.Machine.TotalMessages())
	}
}

func TestLocalizeComputeRhsExecution(t *testing.T) {
	src := `
program rhs
param N = 24
!hpf$ processors procs(2, 2)
!hpf$ template tm(N, N, N)
!hpf$ align rhs with tm(d0, d1, d2)
!hpf$ align rho_i with tm(d0, d1, d2)
!hpf$ align qs with tm(d0, d1, d2)
!hpf$ align us with tm(d0, d1, d2)
!hpf$ align u with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine main()
  real rhs(0:N-1, 0:N-1, 0:N-1)
  real rho_i(0:N-1, 0:N-1, 0:N-1)
  real qs(0:N-1, 0:N-1, 0:N-1)
  real us(0:N-1, 0:N-1, 0:N-1)
  real u(0:N-1, 0:N-1, 0:N-1)
  do k = 0, N-1
    do j = 0, N-1
      do i = 0, N-1
        u(i,j,k) = 1.0 + 0.001 * (i + 2*j + 3*k)
      enddo
    enddo
  enddo
  !hpf$ independent, localize(rho_i, qs, us)
  do onetrip = 1, 1
    do k = 0, N-1
      do j = 0, N-1
        do i = 0, N-1
          rho_i(i,j,k) = 1.0 / u(i,j,k)
          qs(i,j,k) = u(i,j,k) * u(i,j,k)
          us(i,j,k) = u(i,j,k) + 0.5
        enddo
      enddo
    enddo
    do k = 1, N-2
      do j = 1, N-2
        do i = 1, N-2
          rhs(i,j,k) = rho_i(i,j+1,k) - rho_i(i,j-1,k) + rho_i(i,j,k+1) - rho_i(i,j,k-1) + qs(i,j+1,k) - qs(i,j-1,k) + qs(i,j,k+1) - qs(i,j,k-1) + us(i,j+1,k) - us(i,j-1,k) + us(i,j,k+1) - us(i,j,k-1)
        enddo
      enddo
    enddo
  enddo
end
`
	_, res := compareWithSerial(t, src, 4, []string{"rhs"})
	// LOCALIZE trades rho_i boundary messages for u boundary messages at
	// the definition site (the paper's acknowledged cost, §4.2), and
	// must come out ahead of compiling the same program without it.
	progOff, err := CompileSource(src, nil, optionsWithoutLocalize())
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := progOff.Execute(testMachine(4))
	if err != nil {
		t.Fatal(err)
	}
	if on, off := res.Machine.TotalMessages(), resOff.Machine.TotalMessages(); on >= off {
		t.Errorf("LOCALIZE did not reduce messages: on=%d off=%d", on, off)
	}
	if on, off := res.Machine.TotalBytes(), resOff.Machine.TotalBytes(); on >= off {
		t.Errorf("LOCALIZE did not reduce volume: on=%d off=%d", on, off)
	}
}

func optionsWithoutLocalize() Options {
	opt := DefaultOptions()
	opt.CP.Localize = false
	return opt
}

func TestWavefrontPipelineExecution(t *testing.T) {
	// Forward-elimination recurrence along the distributed dimension:
	// the compiled code must pipeline and still match serial results.
	src := `
program sweep
param N = 32
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align v with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real v(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      v(i,j) = 0.001 * (i + j) + 1.0
    enddo
  enddo
  do j = 1, N-1
    do i = 1, N-2
      v(i,j) = v(i,j) + 0.5 * v(i,j-1)
    enddo
  enddo
end
`
	_, res := compareWithSerial(t, src, 4, []string{"v"})
	if res.Machine.TotalMessages() == 0 {
		t.Error("wavefront must communicate across block boundaries")
	}
	// The pipeline serializes: later ranks idle waiting for earlier ones.
	if res.Machine.RankIdle[3] <= res.Machine.RankIdle[0] {
		t.Errorf("expected increasing pipeline idle: rank0 %g, rank3 %g",
			res.Machine.RankIdle[0], res.Machine.RankIdle[3])
	}
}

func TestInterproceduralExecution(t *testing.T) {
	src := `
program interp
param N = 32
!hpf$ processors procs(2, 2)
!hpf$ template tm(N, N, N)
!hpf$ align w with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine scale_line(v, jj, kk)
  real v(0:N-1, 0:N-1, 0:N-1)
  do i = 0, N-1
    v(i, jj, kk) = v(i, jj, kk) * 2.0 + 1.0
  enddo
end

subroutine main()
  real w(0:N-1, 0:N-1, 0:N-1)
  do k = 0, N-1
    do j = 0, N-1
      do i = 0, N-1
        w(i,j,k) = 0.01 * i + 0.1 * j + k
      enddo
    enddo
  enddo
  do k = 0, N-1
    do j = 0, N-1
      call scale_line(w, j, k)
    enddo
  enddo
end
`
	_, res := compareWithSerial(t, src, 4, []string{"w"})
	// Perfectly partitioned call: no communication at all.
	if res.Machine.TotalMessages() != 0 {
		t.Errorf("interprocedural CP should yield zero messages, got %d",
			res.Machine.TotalMessages())
	}
	// And the work must actually be split: each rank computes ~1/4.
	f0 := res.Machine.RankFlops[0]
	var tot float64
	for _, f := range res.Machine.RankFlops {
		tot += f
	}
	if f0 < tot/8 || f0 > tot/2 {
		t.Errorf("rank 0 flops %g of total %g: work not partitioned", f0, tot)
	}
}

func TestReplicatedScalarBroadcast(t *testing.T) {
	// A top-level replicated statement reading one distributed element:
	// every rank must fetch it from the owner.
	src := `
program bc
param N = 16
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  do i = 0, N-1
    a(i) = 0.5 * i
  enddo
  do i = 0, N-1
    b(i) = a(9)
  enddo
end
`
	compareWithSerial(t, src, 4, []string{"b"})
}

func TestDeterministicVirtualTime(t *testing.T) {
	src := `
program det
param N = 32
!hpf$ processors procs(4)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs
subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      a(i,j) = 1.0 * i + j
    enddo
  enddo
  do j = 1, N-2
    do i = 1, N-2
      b(i,j) = a(i,j-1) + a(i,j+1)
    enddo
  enddo
end
`
	prog, err := CompileSource(src, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := prog.Execute(testMachine(4))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		r2, err := prog.Execute(testMachine(4))
		if err != nil {
			t.Fatal(err)
		}
		if r1.Machine.Time != r2.Machine.Time {
			t.Fatalf("nondeterministic virtual time: %g vs %g", r1.Machine.Time, r2.Machine.Time)
		}
	}
}

func TestParamOverride(t *testing.T) {
	src := `
program po
param N = 8
param P = 2
!hpf$ processors procs(P)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    a(i) = 2.0 * i
  enddo
end
`
	prog, err := CompileSource(src, map[string]int{"N": 40, "P": 5}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if prog.Grid.Size() != 5 {
		t.Fatalf("grid size = %d", prog.Grid.Size())
	}
	res, err := prog.Execute(testMachine(5))
	if err != nil {
		t.Fatal(err)
	}
	got, lo, hi, err := res.Global("a")
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] != 0 || hi[0] != 39 {
		t.Fatalf("bounds [%d:%d]", lo[0], hi[0])
	}
	for i, v := range got {
		if v != 2*float64(i) {
			t.Fatalf("a[%d] = %g", i, v)
		}
	}
}

func TestReportMentionsDecisions(t *testing.T) {
	src := `
program rep
param N = 16
!hpf$ processors procs(4)
!hpf$ distribute a(BLOCK) onto procs
subroutine main()
  real a(0:N-1)
  do i = 1, N-2
    a(i) = 1.0
  enddo
end
`
	prog, err := CompileSource(src, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := prog.Report()
	for _, want := range []string{"program rep", "subroutine main", "ON_HOME a(i)"} {
		if !contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOfStr(s, sub) >= 0)
}

func indexOfStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
