package spmd

// kernel_invoke.go is the runtime half of the native-kernel contract:
// before a registered kernel may replace iteratePlanLoop for one
// invocation, the precheck interprets the unit spec against the live
// frame — array geometry must equal the spec constants, every guard
// must be a box (or empty), and saturating interval analysis over the
// loop value hulls must prove every array access in bounds, because the
// emitted code carries no bounds checks.  Any doubt bails to the
// closure engine, which is bit-identical by construction, so a bail is
// a performance event, never a correctness one.

import (
	"math"
	"sync/atomic"
)

// boundKernel pairs a unit spec with its registered implementation.
type boundKernel struct {
	u  *KernelUnit
	fn KernelFunc
}

// kernelBindings maps plan loop roots to registered kernels.  Resolved
// per execution (not memoized) so kernels registered between runs —
// e.g. a plugin loaded after compile — take effect; the result is
// shared read-only by all ranks of one execution.
func (p *Program) kernelBindings() map[*pLoop]*boundKernel {
	units := p.KernelUnits()
	var out map[*pLoop]*boundKernel
	for i, u := range units {
		if fn := KernelFor(u.Fingerprint()); fn != nil {
			if out == nil {
				out = make(map[*pLoop]*boundKernel, len(units))
			}
			out[p.krootList[i]] = &boundKernel{u: u, fn: fn}
		}
	}
	return out
}

// kiv is a conservative value interval; sat marks that saturation
// occurred somewhere in its derivation, disqualifying it from proving
// anything.
type kiv struct {
	lo, hi int64
	sat    bool
}

func satAdd(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return math.MaxInt64, true
		}
		return math.MinInt64, true
	}
	return s, false
}

func satMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64, true
		}
		return math.MinInt64, true
	}
	return p, false
}

// affIv evaluates an affine form to an interval: slot terms are exact
// (slots are invariant during a kernel invocation), local terms range
// over the enclosing loop's value hull.
func affIv(a KAff, ints []int, hull []kiv) kiv {
	out := kiv{lo: int64(a.Const), hi: int64(a.Const)}
	for _, t := range a.Terms {
		var lo, hi int64
		var s1, s2 bool
		if !t.Local {
			v, s := satMul(int64(t.Coef), int64(ints[t.Slot]))
			lo, hi, s1, s2 = v, v, s, s
		} else {
			h := hull[t.Level]
			out.sat = out.sat || h.sat
			lo, s1 = satMul(int64(t.Coef), h.lo)
			hi, s2 = satMul(int64(t.Coef), h.hi)
			if lo > hi {
				lo, hi = hi, lo
			}
		}
		var s3, s4 bool
		out.lo, s3 = satAdd(out.lo, lo)
		out.hi, s4 = satAdd(out.hi, hi)
		out.sat = out.sat || s1 || s2 || s3 || s4
	}
	return out
}

func subIv(s KSub, ints []int, hull []kiv) kiv {
	out := affIv(s.Off, ints, hull)
	if !s.HasVar {
		return out
	}
	var lo, hi int64
	var s1, s2 bool
	if s.VarLocal {
		h := hull[s.Level]
		out.sat = out.sat || h.sat
		lo, s1 = satMul(int64(s.Coef), h.lo)
		hi, s2 = satMul(int64(s.Coef), h.hi)
		if lo > hi {
			lo, hi = hi, lo
		}
	} else {
		v, sm := satMul(int64(s.Coef), int64(ints[s.VarSlot]))
		lo, hi, s1, s2 = v, v, sm, sm
	}
	var s3, s4 bool
	out.lo, s3 = satAdd(out.lo, lo)
	out.hi, s4 = satAdd(out.hi, hi)
	out.sat = out.sat || s1 || s2 || s3 || s4
	return out
}

// runKernel prechecks and, on success, runs a kernel in place of
// iteratePlanLoop's closure walk.  Returns false to fall back.
func (rx *rankExec) runKernel(bk *boundKernel) bool {
	u := bk.u
	f := rx.top()
	if cap(rx.ka) < len(u.Arrays) {
		rx.ka = make([][]float64, len(u.Arrays))
	}
	rx.ka = rx.ka[:len(u.Arrays)]
	for i := range u.Arrays {
		ka := &u.Arrays[i]
		if ka.ASlot >= len(f.aslots) {
			return false
		}
		arr := f.aslots[ka.ASlot]
		if arr == nil || !kernelGeomOK(arr, ka) {
			return false
		}
		rx.ka[i] = arr.data
	}
	if cap(rx.kb) < u.NumBounds {
		rx.kb = make([]int, u.NumBounds)
	}
	kb := rx.kb[:u.NumBounds]
	if cap(rx.khull) < u.NumLevels {
		rx.khull = make([]kiv, u.NumLevels)
		rx.knarrow = make([]kiv, u.NumLevels)
	}
	hull := rx.khull[:u.NumLevels]
	if !rx.prepKLoop(u, u.Root, f, kb, hull) {
		return false
	}
	kernelCalls.Add(1)
	rx.flops = bk.fn(rx.env.ints, rx.env.intSet, rx.env.floats, rx.env.fset, rx.ka, kb, rx.flops)
	return true
}

// kernelCalls counts successful kernel invocations process-wide.  The
// count never influences execution — it exists so differential tests
// can assert the native tier actually ran rather than silently falling
// back to the closures on every loop.
var kernelCalls atomic.Int64

// KernelInvocations returns the process-wide number of native kernel
// invocations so far.
func KernelInvocations() int64 { return kernelCalls.Load() }

// kernelGeomOK verifies the live array matches the spec geometry the
// emitted code inlined, including enough backing data for the full box.
func kernelGeomOK(arr *array, ka *KArray) bool {
	if len(arr.lo) != len(ka.Lo) || len(arr.hi) != len(ka.Hi) || len(arr.stride) != len(ka.Stride) {
		return false
	}
	for k := range ka.Lo {
		if arr.lo[k] != ka.Lo[k] || arr.hi[k] != ka.Hi[k] || arr.stride[k] != ka.Stride[k] {
			return false
		}
	}
	size := 0
	if len(ka.Lo) > 0 {
		w := ka.Hi[0] - ka.Lo[0] + 1
		if w < 0 {
			w = 0
		}
		size = w * ka.Stride[0]
	}
	return len(arr.data) >= size
}

// prepKLoop packs one loop level's window into bounds[] and extends the
// value-hull analysis downward, mirroring iteratePlanLoop's strip and
// clamp narrowing exactly.
func (rx *rankExec) prepKLoop(u *KernelUnit, kl *KLoop, f *frame, kb []int, hull []kiv) bool {
	wLo, wHi := math.MinInt, math.MaxInt
	if rx.strip != nil && rx.strip.variable == kl.Var {
		wLo, wHi = max(wLo, rx.strip.lo), min(wHi, rx.strip.hi)
	}
	if kl.ClampIdx >= 0 {
		if kl.ClampIdx >= len(f.clamps) {
			return false
		}
		c := &f.clamps[kl.ClampIdx]
		wLo, wHi = max(wLo, c.lo), min(wHi, c.hi)
	}
	kb[kl.WinIdx], kb[kl.WinIdx+1] = wLo, wHi
	loI := affIv(kl.Lo, rx.env.ints, hull)
	hiI := affIv(kl.Hi, rx.env.ints, hull)
	var h kiv
	h.sat = loI.sat || hiI.sat
	if kl.Step > 0 {
		h.lo = maxI64(loI.lo, int64(wLo))
		h.hi = minI64(hiI.hi, int64(wHi))
	} else {
		h.lo = maxI64(hiI.lo, int64(wLo))
		h.hi = minI64(loI.hi, int64(wHi))
	}
	hull[kl.Level] = h
	if !h.sat && h.lo > h.hi {
		// Provably empty for every enclosing iteration: the emitted loop
		// header cannot fire, so the subtree's bounds are merely set to
		// defensively-disabled values.
		fillKernelDisabled(kl.Body, kb)
		return true
	}
	return rx.prepKStmts(u, kl.Body, f, kb, hull)
}

func (rx *rankExec) prepKStmts(u *KernelUnit, body []KStmt, f *frame, kb []int, hull []kiv) bool {
	for _, s := range body {
		switch st := s.(type) {
		case *KLoop:
			if !rx.prepKLoop(u, st, f, kb, hull) {
				return false
			}
		case *KAssign:
			if !rx.prepKAssign(u, st, f, kb, hull) {
				return false
			}
		case *KIf:
			if !rx.prepKStmts(u, st.Then, f, kb, hull) {
				return false
			}
			if !rx.prepKStmts(u, st.Els, f, kb, hull) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// prepKAssign packs one statement's kernel-dimension guard box and
// proves its array accesses in bounds over the guard-narrowed hulls.
func (rx *rankExec) prepKAssign(u *KernelUnit, st *KAssign, f *frame, kb []int, hull []kiv) bool {
	if st.GuardIdx >= len(f.guards) {
		return false
	}
	g := &f.guards[st.GuardIdx]
	switch g.kind {
	case guardSet:
		// General iteration sets need per-point Contains; not emitted.
		return false
	case guardNever:
		disableKAssign(st, kb)
		return true
	}
	if len(g.lo) != len(st.NestSlots) || len(g.hi) != len(st.NestSlots) {
		return false
	}
	// Outer-nest dimensions are fixed for the whole invocation: check
	// them once here instead of per point in the kernel.
	for k := 0; k < u.RootDepth; k++ {
		if v := rx.env.ints[st.NestSlots[k]]; v < g.lo[k] || v > g.hi[k] {
			disableKAssign(st, kb)
			return true
		}
	}
	narrow := rx.knarrow[:u.NumLevels]
	copy(narrow, hull)
	empty := false
	for d := 0; d < st.KDims; d++ {
		lo, hi := g.lo[u.RootDepth+d], g.hi[u.RootDepth+d]
		kb[st.BoundsIdx+2*d] = lo
		kb[st.BoundsIdx+2*d+1] = hi
		lv := st.Levels[d]
		narrow[lv].lo = maxI64(narrow[lv].lo, int64(lo))
		narrow[lv].hi = minI64(narrow[lv].hi, int64(hi))
		if !narrow[lv].sat && narrow[lv].lo > narrow[lv].hi {
			empty = true
		}
	}
	if empty {
		return true // no point passes the guard: the accesses never happen
	}
	for i := range st.Refs {
		rc := &st.Refs[i]
		ka := &u.Arrays[rc.Arr]
		for k := range rc.Subs {
			iv := subIv(rc.Subs[k], rx.env.ints, narrow)
			if iv.sat || iv.lo < int64(ka.Lo[k]) || iv.hi > int64(ka.Hi[k]) {
				return false
			}
		}
	}
	return true
}

func disableKAssign(st *KAssign, kb []int) {
	for d := 0; d < st.KDims; d++ {
		kb[st.BoundsIdx+2*d], kb[st.BoundsIdx+2*d+1] = 1, 0
	}
}

// fillKernelDisabled writes defensively-disabled windows and guard
// boxes for a subtree the hull analysis proved unreachable.
func fillKernelDisabled(body []KStmt, kb []int) {
	for _, s := range body {
		switch st := s.(type) {
		case *KLoop:
			kb[st.WinIdx], kb[st.WinIdx+1] = 0, -1
			fillKernelDisabled(st.Body, kb)
		case *KAssign:
			disableKAssign(st, kb)
		case *KIf:
			fillKernelDisabled(st.Then, kb)
			fillKernelDisabled(st.Els, kb)
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
