package spmd

// exec_shm.go runs a compiled program on the shared-memory substrate
// (internal/shm): one goroutine per rank of the processor grid, private
// full-size arrays per thread, and the message-machine transfer plans
// replayed as rendezvous-then-pull synchronization (see doTransfers and
// the pipelined paths in exec.go).  The threads execute exactly the
// iteration partitions the message ranks would — same ON_HOME sets,
// same loop order, same rank-order reductions — so numeric results are
// bit-identical across backends by construction; only the virtual
// clocks differ (memory bandwidth instead of message latency).
//
// Hybrid layouts ("ranks across a grid dimension × threads within a
// rank") reuse the same partitioning: threads whose grid coordinate
// agrees in dimension 0 form one shared-memory group, and pulls across
// groups are priced like the messages the outer rank level would send.

import (
	"errors"
	"fmt"
	"sync"

	"dhpf/internal/iset"
	"dhpf/internal/mpsim"
	"dhpf/internal/passes"
	"dhpf/internal/shm"
)

// executeShm is ExecuteEngine's shared-memory path: same program, same
// engine choice, same per-rank setup, run on a shm.Team instead of the
// message machine.  backend is the canonical name (BackendShm or
// BackendHybrid) and only chooses the grouping.
func (p *Program) executeShm(cfg mpsim.Config, engine Engine, backend string) (*ExecResult, error) {
	var groups []int
	if backend == passes.BackendHybrid {
		groups = make([]int, p.Grid.Size())
		for r := range groups {
			groups[r] = p.Grid.Coord(r)[0]
		}
	}
	var plan *enginePlan
	if engine == EngineCompiled || engine == EngineCodegen {
		plan, _ = p.enginePlanFor()
	}
	var kernels map[*pLoop]*boundKernel
	if engine == EngineCodegen && plan != nil {
		kernels = p.kernelBindings()
	}
	ranks := make([]*rankExec, cfg.Procs)
	var mu sync.Mutex
	var execErr error
	sres := shm.Run(shm.FromMachine(cfg, groups), func(t *shm.Thread) {
		rx := &rankExec{p: p, th: t, me: t.ID, bind: map[string]int{}, plan: plan, kernels: kernels}
		if plan != nil {
			rx.env.ints = make([]int, plan.nInts)
			rx.env.intSet = make([]bool, plan.nInts)
		}
		for k, v := range p.Ctx.Bind.Params {
			rx.bind[k] = v
			if plan != nil {
				s := plan.intSlot[k]
				rx.env.ints[s] = v
				rx.env.intSet[s] = true
			}
		}
		mu.Lock()
		ranks[t.ID] = rx
		mu.Unlock()
		defer func() {
			if rec := recover(); rec != nil {
				mu.Lock()
				if execErr == nil {
					if err, ok := rec.(error); ok && errors.Is(err, mpsim.ErrAborted) {
						execErr = err
					} else {
						execErr = fmt.Errorf("spmd: rank %d: %v", t.ID, rec)
					}
				}
				if debugPanics {
					fmt.Println("SPMD-PANIC:", execErr)
				}
				mu.Unlock()
				// A dead thread can never publish or acknowledge again:
				// abort the team so peers blocked in Await/Drain unwind
				// instead of deadlocking until the wall limit.
				t.Abort(mpsim.ErrAborted)
			}
		}()
		main := p.IR.Main()
		rx.runProc(main, map[string]*array{}, nil)
		rx.flushFlops()
	})
	if execErr != nil {
		return nil, execErr
	}
	// Synthesize the uniform Machine view from the team's clocks: rank
	// times map one-to-one, and the message counters carry the hybrid
	// layout's outer traffic (zero for pure shm), so Seconds/Messages/
	// Bytes accessors and the tuner read every backend the same way.
	res := &mpsim.Result{
		Procs:     sres.Threads,
		Time:      sres.Time,
		RankTime:  sres.ThreadTime,
		RankIdle:  sres.ThreadIdle,
		RankFlops: sres.ThreadFlops,
		SentMsgs:  sres.OuterMsgs,
		SentBytes: sres.OuterBytes,
		RecvMsgs:  make([]int64, sres.Threads),
	}
	return &ExecResult{Machine: res, Shm: sres, prog: p, ranks: ranks}, nil
}

// pullPayload copies the set's elements from src into dst directly,
// array to array: the shared-memory replacement for packPayload +
// unpackPayload with no staging buffer in between.  dst and src are the
// two ranks' private copies of the same declaration, so they share
// geometry; offsets are still computed per array for robustness, and
// boxes that cannot be row-copied on both fall back to the element-wise
// walk with the interpreter's exact bounds panics.
func pullPayload(dst, src *array, s iset.Set) {
	for _, b := range s.Boxes() {
		if !rowCopyable(b, dst) || !rowCopyable(b, src) {
			b.Each(func(p []int) bool {
				dst.set(p, src.get(p))
				return true
			})
			continue
		}
		r := b.Rank()
		w := b.Hi[r-1] - b.Lo[r-1] + 1
		p := make([]int, r)
		copy(p, b.Lo)
		for {
			do, so := 0, 0
			for k := 0; k < r; k++ {
				do += (p[k] - dst.lo[k]) * dst.stride[k]
				so += (p[k] - src.lo[k]) * src.stride[k]
			}
			copy(dst.data[do:do+w], src.data[so:so+w])
			k := r - 2
			for ; k >= 0; k-- {
				p[k]++
				if p[k] <= b.Hi[k] {
					break
				}
				p[k] = b.Lo[k]
			}
			if k < 0 {
				break
			}
		}
	}
}
