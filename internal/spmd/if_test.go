package spmd

import "testing"

func TestIfExecutionMatchesSerial(t *testing.T) {
	src := `
program bc
param N = 32
param P = 4
!hpf$ processors procs(P)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real a(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      if (j == 0) then
        a(i,j) = 100.0
      else
        if (j >= N-1) then
          a(i,j) = -100.0
        else
          a(i,j) = 0.5*i + 0.1*j
        endif
      endif
    enddo
  enddo
  do j = 1, N-2
    do i = 1, N-2
      if (i /= j) then
        a(i,j) = a(i,j) + 0.25*(a(i,j-1) + a(i,j+1))
      endif
    enddo
  enddo
end
`
	compareWithSerial(t, src, 4, []string{"a"})
}

func TestIfInsidePipelinedSweep(t *testing.T) {
	src := `
program bsweep
param N = 24
param P = 3
!hpf$ processors procs(P)
!hpf$ template tm(N, N)
!hpf$ align w with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real w(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      w(i,j) = 1.0 + 0.01*i + 0.02*j
    enddo
  enddo
  do j = 1, N-1
    do i = 1, N-2
      if (j < N-2) then
        w(i,j) = w(i,j) + 0.5*w(i,j-1)
      else
        w(i,j) = w(i,j) + 0.25*w(i,j-1)
      endif
    enddo
  enddo
end
`
	compareWithSerial(t, src, 3, []string{"w"})
}
