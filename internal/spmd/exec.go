package spmd

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/ir"
	"dhpf/internal/iset"
	"dhpf/internal/mpsim"
	"dhpf/internal/passes"
	"dhpf/internal/shm"
)

// debugPanics prints rank panics immediately (set by tests when
// diagnosing distributed deadlocks caused by a dead rank).
var debugPanics = false

// ExecResult is the outcome of running a compiled program.
type ExecResult struct {
	// Machine carries the virtual clocks and (for the message backends)
	// the traffic counters.  Under the shared-memory backend it is
	// synthesized from the team's thread clocks — message counters hold
	// the hybrid layout's outer traffic, zero for pure shm — so callers
	// read makespan and per-rank times uniformly across backends.
	Machine *mpsim.Result
	// Shm carries the shared-memory team's own counters (pulls, pulled
	// bytes, barriers); nil under the message-passing backend.
	Shm   *shm.Result
	prog  *Program
	ranks []*rankExec
}

// Global assembles the authoritative global contents of an array: each
// element is taken from its owner's copy (replicated arrays come from
// rank 0).  Returns the flattened data plus the per-dimension bounds.
func (er *ExecResult) Global(name string) ([]float64, []int, []int, error) {
	decl := findDecl(er.prog.IR, name)
	if decl == nil {
		return nil, nil, nil, fmt.Errorf("spmd: unknown array %q", name)
	}
	a0 := er.ranks[0].mainFrame.arrays[name]
	if a0 == nil {
		return nil, nil, nil, fmt.Errorf("spmd: array %q not allocated in main", name)
	}
	out := newArrayLike(a0)
	layout := er.prog.Ctx.Bind.LayoutOf(name)
	if layout == nil {
		copy(out.data, a0.data)
		return out.data, out.lo, out.hi, nil
	}
	for rank := 0; rank < er.prog.Grid.Size(); rank++ {
		ra := er.ranks[rank].mainFrame.arrays[name]
		lb := layout.LocalBox(rank)
		lb.Each(func(p []int) bool {
			out.set(p, ra.get(p))
			return true
		})
	}
	return out.data, out.lo, out.hi, nil
}

// Execute runs the compiled program on the virtual machine with the
// engine named by Options.Engine ("" = the compiled closure engine).
func (p *Program) Execute(cfg mpsim.Config) (*ExecResult, error) {
	engine, err := ParseEngine(p.Opt.Engine)
	if err != nil {
		return nil, err
	}
	return p.ExecuteEngine(cfg, engine)
}

// ExecuteEngine runs the compiled program with an explicit engine
// choice.  EngineCompiled lowers procedure bodies to closure trees over
// a slot-indexed environment (engine.go) and is byte-identical to
// EngineInterp, the original tree-walking interpreter retained as the
// reference oracle.  If the engine plan cannot be built for a program,
// the interpreter runs instead.
func (p *Program) ExecuteEngine(cfg mpsim.Config, engine Engine) (*ExecResult, error) {
	if cfg.Procs != p.Grid.Size() {
		return nil, fmt.Errorf("spmd: machine has %d ranks, program wants %d", cfg.Procs, p.Grid.Size())
	}
	if b, err := passes.ParseBackend(p.Opt.Backend); err != nil {
		return nil, fmt.Errorf("spmd: %w", err)
	} else if b != passes.BackendMP {
		return p.executeShm(cfg, engine, b)
	}
	var plan *enginePlan
	if engine == EngineCompiled || engine == EngineCodegen {
		// Plan build happens once per Program, before any rank spawns;
		// the plan is immutable and shared read-only by all ranks.  A
		// build error (pathological program shape) falls back to the
		// interpreter for the whole run.
		plan, _ = p.enginePlanFor()
	}
	var kernels map[*pLoop]*boundKernel
	if engine == EngineCodegen && plan != nil {
		kernels = p.kernelBindings()
	}
	ranks := make([]*rankExec, cfg.Procs)
	var mu sync.Mutex
	var execErr error
	res := mpsim.Run(cfg, func(r *mpsim.Rank) {
		rx := &rankExec{p: p, rk: r, me: r.ID, bind: map[string]int{}, plan: plan, kernels: kernels}
		if plan != nil {
			rx.env.ints = make([]int, plan.nInts)
			rx.env.intSet = make([]bool, plan.nInts)
		}
		for k, v := range p.Ctx.Bind.Params {
			rx.bind[k] = v
			if plan != nil {
				s := plan.intSlot[k]
				rx.env.ints[s] = v
				rx.env.intSet[s] = true
			}
		}
		mu.Lock()
		ranks[r.ID] = rx
		mu.Unlock()
		defer func() {
			if rec := recover(); rec != nil {
				mu.Lock()
				if execErr == nil {
					// Machine aborts (time/wall limit) keep their typed
					// error so callers can errors.Is on ErrAborted.
					if err, ok := rec.(error); ok && errors.Is(err, mpsim.ErrAborted) {
						execErr = err
					} else {
						execErr = fmt.Errorf("spmd: rank %d: %v", r.ID, rec)
					}
				}
				if debugPanics {
					fmt.Println("SPMD-PANIC:", execErr)
				}
				mu.Unlock()
			}
		}()
		main := p.IR.Main()
		rx.runProc(main, map[string]*array{}, nil)
		rx.flushFlops()
	})
	if execErr != nil {
		return nil, execErr
	}
	return &ExecResult{Machine: res, prog: p, ranks: ranks}, nil
}

// --- array storage -----------------------------------------------------------

type array struct {
	name   string
	lo, hi []int
	stride []int
	data   []float64
}

func newArray(name string, lo, hi []int) *array {
	a := &array{name: name, lo: lo, hi: hi, stride: make([]int, len(lo))}
	size := 1
	for k := len(lo) - 1; k >= 0; k-- {
		a.stride[k] = size
		w := hi[k] - lo[k] + 1
		if w < 0 {
			w = 0
		}
		size *= w
	}
	a.data = make([]float64, size)
	return a
}

func newArrayLike(a *array) *array { return newArray(a.name, a.lo, a.hi) }

func (a *array) off(p []int) int {
	o := 0
	for k, v := range p {
		if v < a.lo[k] || v > a.hi[k] {
			panic(fmt.Sprintf("spmd: %s%v out of bounds [%v:%v]", a.name, p, a.lo, a.hi))
		}
		o += (v - a.lo[k]) * a.stride[k]
	}
	return o
}

func (a *array) get(p []int) float64    { return a.data[a.off(p)] }
func (a *array) set(p []int, v float64) { a.data[a.off(p)] = v }

func findDecl(prog *ir.Program, name string) *ir.Decl {
	for _, proc := range prog.Procs {
		if d := proc.DeclOf(name); d != nil {
			return d
		}
	}
	return nil
}

// --- per-rank execution -------------------------------------------------------

type frame struct {
	proc   *ir.Procedure
	arrays map[string]*array
	fenv   map[string]float64
	// iteration sets (this rank) per assignment/call statement id,
	// computed over the statement's full nest at procedure entry
	iters map[int]iset.Set
	vars  map[int][]string // nest variable names per statement id

	// Compiled-engine state (nil/unused under the interpreter): the
	// frame's slot views installed into the rank environment, the guards
	// and clamps derived from iters (engine_bounds.go), and the saved
	// caller views restored on frame pop.
	plan        *procPlan
	floats      []float64
	fset        []bool
	aslots      []*array
	guards      []stmtGuard
	clamps      []clampRange
	point       []int // reusable membership buffer for guardSet
	savedFloats []float64
	savedFset   []bool
	savedArrays []*array
}

type stripCtl struct {
	variable string
	lo, hi   int
}

type rankExec struct {
	p *Program
	// Exactly one of rk and th is non-nil: the message-passing rank or
	// the shared-memory thread this executor runs on.  All machine
	// operations funnel through the helpers below (flushFlops,
	// allReduce) or through the backend branches in doTransfers and the
	// pipelined send/recv paths.
	rk        *mpsim.Rank
	th        *shm.Thread
	me        int
	bind      map[string]int // params + loop variables + integer formals
	frames    []*frame
	flops     float64
	tagSeq    int
	strip     *stripCtl
	mainFrame *frame // retained after execution for result gathering

	// Compiled-engine state (nil/zero under the interpreter).  env's
	// integer slots shadow bind — ints[slot] == bind[name], 0 when
	// unbound — except inside communication-free loops where only the
	// slot is maintained (engine.go).  payload is the reused message
	// staging buffer (mpsim.Send copies before returning).
	plan    *enginePlan
	env     engineEnv
	payload []float64

	// Native-kernel state (nil/empty except under EngineCodegen):
	// kernels maps plan loop roots to registered kernels for this
	// execution; kb/ka/khull/knarrow are reused invocation scratch
	// (kernel_invoke.go), never shared across ranks.
	kernels map[*pLoop]*boundKernel
	kb      []int
	ka      [][]float64
	khull   []kiv
	knarrow []kiv

	// Reused scratch for transferKey (never shared across ranks).
	keyBuf   []byte
	keyNames []string
}

func (rx *rankExec) top() *frame { return rx.frames[len(rx.frames)-1] }

func (rx *rankExec) flushFlops() {
	if rx.flops > 0 {
		if rx.th != nil {
			rx.th.Compute(rx.flops)
		} else {
			rx.rk.Compute(rx.flops)
		}
		rx.flops = 0
	}
}

// allReduce combines one value collectively on whichever substrate the
// executor runs on.  Both substrates fold contributions in rank order,
// so the result is bit-identical across backends.
func (rx *rankExec) allReduce(op byte, v float64) float64 {
	if rx.th != nil {
		return rx.th.AllReduce(op, v)
	}
	return rx.rk.AllReduce(op, v)
}

// runProc executes a procedure body in a fresh frame.  actualArrays maps
// formal array names to the caller's array objects (aliasing, like
// Fortran); intFormals were already installed into bind by the caller.
func (rx *rankExec) runProc(proc *ir.Procedure, actualArrays map[string]*array, floatFormals map[string]float64) {
	f := &frame{
		proc:   proc,
		arrays: map[string]*array{},
		fenv:   map[string]float64{},
		iters:  map[int]iset.Set{},
		vars:   map[int][]string{},
	}
	for name, a := range actualArrays {
		f.arrays[name] = a
	}
	for name, v := range floatFormals {
		f.fenv[name] = v
	}
	for _, d := range proc.Decls {
		if d.Rank() == 0 {
			continue
		}
		if _, aliased := f.arrays[d.Name]; aliased {
			continue
		}
		lo := make([]int, d.Rank())
		hi := make([]int, d.Rank())
		for k := range d.LB {
			lo[k] = d.LB[k].EvalOr(rx.bind, 0)
			hi[k] = d.UB[k].EvalOr(rx.bind, 0)
		}
		f.arrays[d.Name] = newArray(d.Name, lo, hi)
	}
	rx.frames = append(rx.frames, f)
	if rx.mainFrame == nil {
		rx.mainFrame = f
	}

	// Iteration sets for every assignment and call, on this rank, with
	// the current integer-formal binding.
	localOf := rx.p.Ctx.LocalOf(proc, rx.me)
	ir.Walk(proc.Body, func(s ir.Stmt, loops []*ir.Loop) bool {
		nest := make([]*ir.Loop, len(loops))
		copy(nest, loops)
		switch st := s.(type) {
		case *ir.Assign:
			f.iters[st.ID] = rx.p.Sel.CPOf(st.ID).IterSet(nest, rx.bind, localOf)
			f.vars[st.ID] = ir.NestVars(nest)
		case *ir.CallStmt:
			f.iters[st.ID] = rx.p.Sel.CPOf(st.ID).IterSet(nest, rx.bind, localOf)
			f.vars[st.ID] = ir.NestVars(nest)
		}
		return true
	})

	if rx.plan != nil {
		pp := rx.plan.procs[proc.Name]
		rx.pushPlanFrame(f, pp, floatFormals)
		rx.execPlanStmts(proc, pp.body)
		rx.popPlanFrame(f)
	} else {
		rx.execStmts(proc, proc.Body, 0)
	}
	rx.frames = rx.frames[:len(rx.frames)-1]
}

// execStmts interprets a statement list at the given loop depth.
func (rx *rankExec) execStmts(proc *ir.Procedure, stmts []ir.Stmt, depth int) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Assign:
			rx.execAssign(proc, st, depth)
		case *ir.CallStmt:
			rx.execCall(proc, st, depth)
		case *ir.Loop:
			rx.execLoop(proc, st, depth)
		case *ir.IfStmt:
			if rx.evalCond(st.Cond) {
				rx.execStmts(proc, st.Then, depth)
			} else {
				rx.execStmts(proc, st.Else, depth)
			}
		}
	}
}

// evalCond evaluates a (processor-uniform) condition.
func (rx *rankExec) evalCond(c ir.Cond) bool {
	l, r := rx.eval(c.L), rx.eval(c.R)
	switch c.Op {
	case "<":
		return l < r
	case ">":
		return l > r
	case "<=":
		return l <= r
	case ">=":
		return l >= r
	case "==":
		return l == r
	case "/=":
		return l != r
	}
	panic(fmt.Sprintf("spmd: unknown comparison %q", c.Op))
}

func (rx *rankExec) execAssign(proc *ir.Procedure, a *ir.Assign, depth int) {
	f := rx.top()
	if depth == 0 {
		// Top-level statement: fire its comm events around it.
		rx.fireEvents(proc, rx.eventsAt(proc, a, comm.ReadComm), 0)
		if rx.ownsTopLevel(proc, a.ID) {
			rx.evalAndStore(proc, a)
		}
		rx.fireEvents(proc, rx.eventsAt(proc, a, comm.WriteBack), 0)
		return
	}
	// Membership: current loop point within the statement's own nest.
	vars := f.vars[a.ID]
	point := make([]int, len(vars))
	for k, v := range vars {
		point[k] = rx.bind[v]
	}
	if !f.iters[a.ID].Contains(point) {
		return
	}
	rx.evalAndStore(proc, a)
}

// ownsTopLevel guards a statement outside any loop: this rank executes
// it when the CP is replicated or when it owns the data of some ON_HOME
// term (subscripts are loop-invariant at depth 0).
func (rx *rankExec) ownsTopLevel(proc *ir.Procedure, id int) bool {
	c := rx.p.Sel.CPOf(id)
	if c.Replicated() {
		return true
	}
	for _, t := range c.Terms {
		layout := rx.p.Ctx.Layout(proc, t.Array)
		if layout == nil {
			return true
		}
		local := layout.LocalBox(rx.me)
		owns := true
		for k, sub := range t.Subs {
			if sub.IsRange {
				lo := sub.Lo.EvalOr(rx.bind, 0)
				hi := sub.Hi.EvalOr(rx.bind, 0)
				if max(lo, local.Lo[k]) > min(hi, local.Hi[k]) {
					owns = false
					break
				}
				continue
			}
			v := sub.Off.EvalOr(rx.bind, 0)
			if sub.Var != "" {
				v += sub.Coef * rx.bind[sub.Var]
			}
			if v < local.Lo[k] || v > local.Hi[k] {
				owns = false
				break
			}
		}
		if owns {
			return true
		}
	}
	return false
}

func (rx *rankExec) evalAndStore(proc *ir.Procedure, a *ir.Assign) {
	v := rx.eval(a.RHS)
	rx.flops += flopsOf(a)
	f := rx.top()
	if len(a.LHS.Subs) == 0 {
		f.fenv[a.LHS.Name] = v
		return
	}
	arr := f.arrays[a.LHS.Name]
	if arr == nil {
		panic(fmt.Sprintf("spmd: store to undeclared array %q", a.LHS.Name))
	}
	arr.set(rx.subVals(a.LHS), v)
}

func (rx *rankExec) subVals(r *ir.ArrayRef) []int {
	p := make([]int, len(r.Subs))
	for k, s := range r.Subs {
		if s.Var == "" {
			p[k] = s.Off.EvalOr(rx.bind, 0)
		} else {
			p[k] = s.Coef*rx.bind[s.Var] + s.Off.EvalOr(rx.bind, 0)
		}
	}
	return p
}

func (rx *rankExec) eval(e ir.Expr) float64 {
	switch x := e.(type) {
	case ir.FloatConst:
		return x.Val
	case ir.IndexRef:
		return float64(rx.bind[x.Name])
	case ir.ParamRef:
		return float64(rx.bind[x.Name])
	case ir.ScalarRef:
		if v, ok := rx.top().fenv[x.Name]; ok {
			return v
		}
		if v, ok := rx.bind[x.Name]; ok {
			return float64(v) // integer formal read as a value
		}
		return 0
	case *ir.ArrayRef:
		arr := rx.top().arrays[x.Name]
		if arr == nil {
			panic(fmt.Sprintf("spmd: read of undeclared array %q", x.Name))
		}
		return arr.get(rx.subVals(x))
	case *ir.Bin:
		l, r := rx.eval(x.L), rx.eval(x.R)
		switch x.Op {
		case '+':
			return l + r
		case '-':
			return l - r
		case '*':
			return l * r
		case '/':
			return l / r
		}
	case *ir.Intrinsic:
		args := make([]float64, len(x.Args))
		for i, a := range x.Args {
			args[i] = rx.eval(a)
		}
		switch x.Name {
		case "sqrt":
			return math.Sqrt(args[0])
		case "exp":
			return math.Exp(args[0])
		case "sin":
			return math.Sin(args[0])
		case "cos":
			return math.Cos(args[0])
		case "log":
			return math.Log(args[0])
		case "abs":
			return math.Abs(args[0])
		case "min":
			return math.Min(args[0], args[1])
		case "max":
			return math.Max(args[0], args[1])
		case "mod":
			return math.Mod(args[0], args[1])
		case "pow":
			return math.Pow(args[0], args[1])
		}
	}
	panic(fmt.Sprintf("spmd: cannot evaluate %v", e))
}

func (rx *rankExec) execCall(proc *ir.Procedure, call *ir.CallStmt, depth int) {
	f := rx.top()
	// Membership like an assignment.
	if depth == 0 {
		if !rx.ownsTopLevel(proc, call.ID) {
			return
		}
	} else {
		vars := f.vars[call.ID]
		point := make([]int, len(vars))
		for k, v := range vars {
			point[k] = rx.bind[v]
		}
		if !f.iters[call.ID].Contains(point) {
			return
		}
	}
	_ = f
	callee := rx.p.IR.Proc(call.Callee)
	actualArrays := map[string]*array{}
	floatFormals := map[string]float64{}
	var savedInts []struct {
		name string
		val  int
		had  bool
	}
	for k, formal := range callee.Formals {
		switch arg := call.Args[k].(type) {
		case *ir.ArrayRef:
			if len(arg.Subs) == 0 {
				actualArrays[formal] = f.arrays[arg.Name]
				continue
			}
			floatFormals[formal] = rx.eval(arg)
		case ir.IndexRef, ir.ParamRef:
			old, had := rx.bind[formal]
			savedInts = append(savedInts, struct {
				name string
				val  int
				had  bool
			}{formal, old, had})
			rx.bind[formal] = int(rx.eval(arg))
		case ir.FloatConst:
			if float64(int(arg.Val)) == arg.Val {
				old, had := rx.bind[formal]
				savedInts = append(savedInts, struct {
					name string
					val  int
					had  bool
				}{formal, old, had})
				rx.bind[formal] = int(arg.Val)
			} else {
				floatFormals[formal] = arg.Val
			}
		default:
			floatFormals[formal] = rx.eval(arg)
		}
	}
	rx.runProc(callee, actualArrays, floatFormals)
	for i := len(savedInts) - 1; i >= 0; i-- {
		s := savedInts[i]
		if s.had {
			rx.bind[s.name] = s.val
		} else {
			delete(rx.bind, s.name)
		}
	}
}

func (rx *rankExec) execLoop(proc *ir.Procedure, l *ir.Loop, depth int) {
	// Fire hoisted read events placed at this loop boundary.
	rx.fireEvents(proc, rx.eventsBeforeLoop(proc, l, depth, comm.ReadComm), depth)

	// Record initial values of reduction variables finalized here.
	plans := rx.reductionsAt(proc, l)
	s0 := make([]float64, len(plans))
	for i, p := range plans {
		s0[i] = rx.top().fenv[p.Var]
	}

	if pipe := rx.pipelinedEvents(proc, l); len(pipe) > 0 {
		rx.execPipelined(proc, l, depth, pipe, func() { rx.iterateLoop(proc, l, depth) })
	} else {
		rx.iterateLoop(proc, l, depth)
	}

	// Combine reduction partials collectively.
	for i, p := range plans {
		rx.flushFlops()
		v := rx.top().fenv[p.Var]
		switch p.Op {
		case '+':
			rx.top().fenv[p.Var] = s0[i] + rx.allReduce('+', v-s0[i])
		default: // '<' min, '>' max: every rank's partial includes s0
			rx.top().fenv[p.Var] = rx.allReduce(p.Op, v)
		}
	}

	// Deferred write-backs placed at this boundary.
	rx.fireEvents(proc, rx.eventsBeforeLoop(proc, l, depth, comm.WriteBack), depth)
}

// reductionsAt returns the reduction plans finalized at this loop.
func (rx *rankExec) reductionsAt(proc *ir.Procedure, l *ir.Loop) []ReductionPlan {
	var out []ReductionPlan
	for _, p := range rx.p.Reductions[proc.Name] {
		if p.Loop == l {
			out = append(out, p)
		}
	}
	return out
}

// iterateLoop runs the loop's range (restricted by an active strip when
// the loop is the strip loop).
func (rx *rankExec) iterateLoop(proc *ir.Procedure, l *ir.Loop, depth int) {
	lo := l.Lo.EvalOr(rx.bind, 0)
	hi := l.Hi.EvalOr(rx.bind, 0)
	if rx.strip != nil && rx.strip.variable == l.Var {
		if l.Step > 0 {
			lo, hi = max(lo, rx.strip.lo), min(hi, rx.strip.hi)
		} else {
			lo, hi = min(lo, rx.strip.hi), max(hi, rx.strip.lo)
		}
	}
	old, had := rx.bind[l.Var]
	if l.Step > 0 {
		for v := lo; v <= hi; v++ {
			rx.bind[l.Var] = v
			rx.execStmts(proc, l.Body, depth+1)
		}
	} else {
		for v := lo; v >= hi; v-- {
			rx.bind[l.Var] = v
			rx.execStmts(proc, l.Body, depth+1)
		}
	}
	if had {
		rx.bind[l.Var] = old
	} else {
		delete(rx.bind, l.Var)
	}
}

// --- event firing -------------------------------------------------------------

// eventsBeforeLoop selects the analysis events anchored at loop l at the
// given depth (their statements sit inside l, their placement hoists them
// exactly to l's boundary) that are live and not pipelined.
func (rx *rankExec) eventsBeforeLoop(proc *ir.Procedure, l *ir.Loop, depth int, kind comm.Kind) []*comm.Event {
	an := rx.p.Comm[proc.Name]
	var out []*comm.Event
	for _, e := range an.Events {
		if e.Kind != kind || e.Eliminated || e.Pipelined {
			continue
		}
		d := min(e.Depth, len(e.Nest)-1)
		if d < 0 {
			continue
		}
		if d == depth && e.Nest[d] == l {
			out = append(out, e)
		}
	}
	return out
}

// eventsAt selects events for a specific top-level statement.
func (rx *rankExec) eventsAt(proc *ir.Procedure, stmt *ir.Assign, kind comm.Kind) []*comm.Event {
	an := rx.p.Comm[proc.Name]
	var out []*comm.Event
	for _, e := range an.Events {
		if e.Kind != kind || e.Eliminated || e.Pipelined {
			continue
		}
		if e.Stmt == stmt && len(e.Nest) == 0 {
			out = append(out, e)
		}
	}
	return out
}

// fireEvents computes the transfers the events require under the current
// outer-loop binding and performs them (sends first, then receives —
// sends are buffered so this cannot deadlock).
func (rx *rankExec) fireEvents(proc *ir.Procedure, events []*comm.Event, depth int) {
	if len(events) == 0 {
		return
	}
	transfers := rx.transfersFor(proc, events, depth, nil)
	rx.doTransfers(proc, transfers)
}

// transferKey renders every input of a transfer plan into a memo key:
// the procedure, the call depth, each event's identity (statement, kind,
// full reference text, nest length — together these determine the
// event's sets), the strip window, and the entire scalar binding (a
// superset of the values the set algebra can read, so equal keys imply
// equal plans even if some bound scalar never occurs in a subscript).
func (rx *rankExec) transferKey(proc *ir.Procedure, events []*comm.Event, depth int, strip *stripCtl) string {
	b := rx.keyBuf[:0]
	b = append(b, proc.Name...)
	b = strconv.AppendInt(b, int64(depth), 10)
	for _, e := range events {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(e.Stmt.ID), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(e.Kind), 10)
		b = append(b, e.Ref.String()...)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(len(e.Nest)), 10)
	}
	if strip != nil {
		b = append(b, '#')
		b = append(b, strip.variable...)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(strip.lo), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(strip.hi), 10)
	}
	names := rx.keyNames[:0]
	for name := range rx.bind {
		names = append(names, name)
	}
	sort.Strings(names)
	rx.keyNames = names
	for _, name := range names {
		b = append(b, ';')
		b = append(b, name...)
		b = append(b, '=')
		b = strconv.AppendInt(b, int64(rx.bind[name]), 10)
	}
	rx.keyBuf = b
	return string(b)
}

// transfersFor computes the coalesced point-to-point transfers satisfying
// the events, restricted to the current values of the outermost `depth`
// loop variables and to an optional strip window.  Every rank computes
// the identical list (the plan depends only on sets), which keeps message
// tags consistent — so the plan is memoized on the Program and computed
// once per distinct key across all ranks and executions.
func (rx *rankExec) transfersFor(proc *ir.Procedure, events []*comm.Event, depth int, strip *stripCtl) []comm.Transfer {
	memoKey := rx.transferKey(proc, events, depth, strip)
	if cached, ok := rx.p.tplans.Load(memoKey); ok {
		return cached.([]comm.Transfer)
	}
	out := rx.computeTransfers(proc, events, depth, strip)
	rx.p.tplans.Store(memoKey, out)
	return out
}

func (rx *rankExec) computeTransfers(proc *ir.Procedure, events []*comm.Event, depth int, strip *stripCtl) []comm.Transfer {
	type key struct {
		array    string
		from, to int
	}
	acc := map[key]iset.Set{}
	var order []key
	grid := rx.p.Grid
	for _, e := range events {
		layout := rx.p.Ctx.Layout(proc, e.Ref.Name)
		if layout == nil {
			continue
		}
		vars := ir.NestVars(e.Nest)
		for t := 0; t < grid.Size(); t++ {
			iters := rx.p.Sel.CPOf(e.Stmt.ID).IterSet(e.Nest, rx.bind, rx.p.Ctx.LocalOf(proc, t))
			// Fix the outer loop dimensions at their current values.
			for k := 0; k < depth && k < len(vars); k++ {
				v := rx.bind[vars[k]]
				iters = iters.ClampDim(k, v, v)
			}
			if strip != nil {
				for k, v := range vars {
					if v == strip.variable {
						iters = iters.ClampDim(k, strip.lo, strip.hi)
					}
				}
			}
			if iters.IsEmpty() {
				continue
			}
			data := cp.RefDataSet(e.Ref, vars, iters, rx.bind)
			data = data.IntersectBox(layout.Space())
			nl := data.SubtractBox(layout.LocalBox(t))
			if nl.IsEmpty() {
				continue
			}
			for peer := 0; peer < grid.Size(); peer++ {
				if peer == t {
					continue
				}
				part := nl.IntersectBox(layout.LocalBox(peer))
				if part.IsEmpty() {
					continue
				}
				var k key
				if e.Kind == comm.ReadComm {
					k = key{array: e.Ref.Name, from: peer, to: t}
				} else {
					k = key{array: e.Ref.Name, from: t, to: peer}
				}
				if _, seen := acc[k]; !seen {
					order = append(order, k)
				}
				acc[k] = acc[k].Union(part)
			}
		}
	}
	out := make([]comm.Transfer, 0, len(order))
	for _, k := range order {
		out = append(out, comm.Transfer{Array: k.array, From: k.from, To: k.to, Data: acc[k]})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Array != b.Array {
			return a.Array < b.Array
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return out
}

// doTransfers performs a transfer plan: this rank sends every message it
// sources, then receives every message targeting it.  Tags derive from a
// per-rank sequence counter that advances identically on all ranks.
//
// Under the shared-memory backend the same plan runs with no message
// traffic: the rank publishes a rendezvous token per outgoing transfer
// (pointing at its own array storage), pulls every incoming transfer
// directly from the producer's array, and drains its published tokens
// before returning so no later write can race a lagging consumer.
// Direct pulls are safe because within a one-kind plan the regions a
// rank sources and the regions it receives are disjoint: read-comm
// sources lie inside the owner's local box and targets outside the
// reader's; write-backs are the mirror image.
func (rx *rankExec) doTransfers(proc *ir.Procedure, transfers []comm.Transfer) {
	if len(transfers) == 0 {
		return
	}
	rx.flushFlops()
	base := rx.tagSeq * 8192
	rx.tagSeq++
	f := rx.top()
	if rx.th != nil {
		for i, tr := range transfers {
			if tr.From != rx.me {
				continue
			}
			rx.th.Publish(tr.To, base+i, 8*int(tr.Data.Card()), f.arrays[tr.Array])
		}
		for i, tr := range transfers {
			if tr.To != rx.me {
				continue
			}
			src := rx.th.Await(tr.From, base+i).(*array)
			pullPayload(f.arrays[tr.Array], src, tr.Data)
			rx.th.Ack(tr.From, 8*int(tr.Data.Card()))
		}
		rx.th.Drain()
		return
	}
	for i, tr := range transfers {
		if tr.From != rx.me {
			continue
		}
		rx.payload = packPayload(rx.payload[:0], f.arrays[tr.Array], tr.Data)
		rx.rk.Send(tr.To, base+i, rx.payload)
	}
	for i, tr := range transfers {
		if tr.To != rx.me {
			continue
		}
		data := rx.rk.Recv(tr.From, base+i)
		unpackPayload(data, f.arrays[tr.Array], tr.Data)
		rx.rk.Recycle(data)
	}
}

// --- pipelined (wavefront) execution -------------------------------------------

// pipelinedEvents returns the live pipelined events carried by loop l.
func (rx *rankExec) pipelinedEvents(proc *ir.Procedure, l *ir.Loop) []*comm.Event {
	an := rx.p.Comm[proc.Name]
	var out []*comm.Event
	for _, e := range an.Events {
		if e.Pipelined && !e.Eliminated && e.CarriedBy == l {
			out = append(out, e)
		}
	}
	return out
}

// execPipelined runs a wavefront nest with coarse-grain pipelining: the
// innermost loop below the carrier is strip-mined with the configured
// grain; each strip receives its incoming boundary data, computes, and
// forwards its outgoing boundary data (SC'98 §2, §8.1).
//
// A pipelined loop nested inside another pipelined loop's strip (the
// 2-D diagonal wavefront of LU-class codes) does not re-strip: it runs
// block-serialized within the enclosing strip, exchanging its boundary
// restricted to that strip.
// The loop body itself runs through the iterate callback, so both the
// interpreter (iterateLoop) and the compiled engine (iteratePlanLoop)
// share this strip/chunk/tag protocol unchanged.
func (rx *rankExec) execPipelined(proc *ir.Procedure, l *ir.Loop, depth int, events []*comm.Event, iterate func()) {
	if rx.strip != nil {
		// Nested wavefront inside an enclosing pipeline strip.
		plan := rx.transfersFor(proc, events, depth, rx.strip)
		base := rx.recvMineTagged(plan)
		iterate()
		rx.sendMineTagged(plan, base)
		rx.drainPipeline()
		return
	}
	strip := rx.chooseStrip(l, events)
	if strip == nil {
		// No strip loop: block-serialized wavefront (granularity = whole
		// block).
		plan := rx.transfersFor(proc, events, depth, nil)
		base := rx.recvMineTagged(plan)
		iterate()
		rx.sendMineTagged(plan, base)
		rx.drainPipeline()
		return
	}
	lo := strip.Lo.EvalOr(rx.bind, 0)
	hi := strip.Hi.EvalOr(rx.bind, 0)
	if lo > hi {
		lo, hi = hi, lo
	}
	g := rx.p.Opt.PipelineGrain
	if g <= 0 {
		g = hi - lo + 1
	}
	for s := lo; s <= hi; s += g {
		chunk := &stripCtl{variable: strip.Var, lo: s, hi: min(s+g-1, hi)}
		plan := rx.transfersFor(proc, events, depth, chunk)
		base := rx.recvMineTagged(plan)
		rx.strip = chunk
		iterate()
		rx.strip = nil
		rx.sendMineTagged(plan, base)
	}
	rx.drainPipeline()
}

// drainPipeline is the shared-memory backend's end-of-wavefront
// obligation: block until every strip this rank published has been
// pulled by its consumer, so statements after the loop cannot overwrite
// boundary rows a neighbour is still reading.  The drain sits outside
// the strip loop — the pipeline itself stays fully overlapped — and is
// a no-op on the message-passing backend (Send copied the data).
func (rx *rankExec) drainPipeline() {
	if rx.th != nil {
		rx.th.Drain()
	}
}

// chooseStrip picks the strip-mining loop: the innermost loop enclosing
// the pipelined statements that is not the carrier itself.
func (rx *rankExec) chooseStrip(l *ir.Loop, events []*comm.Event) *ir.Loop {
	for _, e := range events {
		nest := e.Nest
		for i := len(nest) - 1; i >= 0; i-- {
			if nest[i] != l {
				return nest[i]
			}
		}
	}
	return nil
}

// recvMineTagged allocates the next tag block (identically on every
// rank), receives this rank's incoming transfers, and returns the block
// base for the matching sendMineTagged.  Under the shared-memory
// backend the receive is a rendezvous-then-pull: await the producer's
// token, copy straight from its array, acknowledge.  The producer
// published after computing the strip, so the pulled region is final
// for the duration of the loop (a strip is written once); its later
// overwrites wait in Drain at the end of execPipelined.
func (rx *rankExec) recvMineTagged(plan []comm.Transfer) int {
	rx.flushFlops()
	base := rx.tagSeq * 8192
	rx.tagSeq++
	f := rx.top()
	for i, tr := range plan {
		if tr.To != rx.me {
			continue
		}
		if rx.th != nil {
			src := rx.th.Await(tr.From, base+i).(*array)
			pullPayload(f.arrays[tr.Array], src, tr.Data)
			rx.th.Ack(tr.From, 8*int(tr.Data.Card()))
			continue
		}
		data := rx.rk.Recv(tr.From, base+i)
		unpackPayload(data, f.arrays[tr.Array], tr.Data)
		rx.rk.Recycle(data)
	}
	return base
}

func (rx *rankExec) sendMineTagged(plan []comm.Transfer, base int) {
	rx.flushFlops()
	f := rx.top()
	for i, tr := range plan {
		if tr.From != rx.me {
			continue
		}
		if rx.th != nil {
			rx.th.Publish(tr.To, base+i, 8*int(tr.Data.Card()), f.arrays[tr.Array])
			continue
		}
		rx.payload = packPayload(rx.payload[:0], f.arrays[tr.Array], tr.Data)
		rx.rk.Send(tr.To, base+i, rx.payload)
	}
}
