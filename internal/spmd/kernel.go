package spmd

// kernel.go defines the native-kernel contract between the engine and
// internal/codegen: the exported, serializable spec of a specializable
// loop nest (KernelUnit), the ABI of a compiled kernel function, the
// content-addressed fingerprint a generated kernel is registered under,
// and the process-wide kernel registry.
//
// A kernel unit is a maximal engine-plan loop subtree whose every
// iteration point is communication-free: all transfers, reductions and
// pipelined exchanges attached to the root loop fire outside the
// iteration (execPlanLoop), so replacing iteratePlanLoop's closure walk
// with one flat compiled function is unobservable as long as that
// function performs the same floating-point operations, flop
// accumulation, guard decisions and stores in the same order.  The
// emitted Go source (internal/codegen) and the runtime precheck
// (kernel_invoke.go) are two consumers of the same spec; the
// fingerprint ties them together, so a registered kernel is reused by
// every program containing a structurally identical unit regardless of
// which program it was generated from.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync"
)

// KernelABI names the kernel calling convention; it participates in the
// unit fingerprint so a registry populated by an older generator can
// never serve a newer engine.
const KernelABI = "dhpf-kernel-v1"

// KernelFunc is the compiled form of one kernel unit.  The signature
// uses only unnamed/builtin types so implementations can cross a
// plugin boundary without sharing package identity with this package.
//
//   - ints/intSet: the rank's global integer slots (read-only; kernel
//     loop variables live in locals, never written back to slots).
//   - floats/fset: the current frame's scalar slots (scalar stores write
//     both, exactly like the closure engine).
//   - arrays: per-unit array data slices, in KernelUnit.Arrays order.
//   - bounds: per-invocation window and guard-box values packed by the
//     runtime precheck (see KernelUnit bounds layout).
//   - flops: the running flop accumulator; the kernel adds each executed
//     statement's flop cost in iteration order and returns the result.
type KernelFunc = func(ints []int, intSet []bool, floats []float64, fset []bool,
	arrays [][]float64, bounds []int, flops float64) float64

// --- kernel unit spec ----------------------------------------------------------

// KAff is an affine form const + Σ coef·var over kernel loop locals and
// integer slots, mirroring ir.AffExpr after name resolution.
type KAff struct {
	Const int
	Terms []KTerm
}

// KTerm is one affine term.  Local terms read an in-scope kernel loop
// variable (by level); slot terms read the rank's integer slot, whose
// value is fixed for the whole kernel invocation.
type KTerm struct {
	Coef  int
	Local bool
	Level int // kernel loop level when Local
	Slot  int // global int slot otherwise
}

// KSub is one array subscript Coef·var + Off.
type KSub struct {
	HasVar   bool
	Coef     int
	VarLocal bool
	Level    int // when VarLocal
	VarSlot  int // otherwise
	Off      KAff
}

// KArray describes one array the unit touches: its frame slot plus the
// exact geometry the emitted code inlines as constants.  The runtime
// precheck compares the live array against this geometry and bails to
// the closure engine on any mismatch.
type KArray struct {
	ASlot  int
	Name   string
	Lo     []int
	Hi     []int
	Stride []int
}

// KRefCheck is one array access (read or write) the runtime precheck
// must prove in-bounds by interval analysis before the kernel may run
// (the emitted code has no bounds checks).
type KRefCheck struct {
	Arr  int // index into KernelUnit.Arrays
	Subs []KSub
}

// KExpr is a kernel expression tree node.
type KExpr interface{ kExpr() }

// KConst is a floating-point literal (emitted as an exact hex literal).
type KConst struct{ Val float64 }

// KLocal reads an in-scope kernel loop variable as float64.
type KLocal struct{ Level int }

// KSlotInt reads an integer slot (param, formal, or out-of-scope loop
// variable) as float64; hoisted to a local at kernel entry.
type KSlotInt struct{ Slot int }

// KScalar is a dynamic scalar read: floats[FSlot] if set, else the
// integer slot as float64 if bound, else 0 — the closure engine's
// ScalarRef semantics verbatim.
type KScalar struct{ FSlot, ISlot int }

// KScalarLocal is a scalar read whose name is an in-scope kernel loop
// variable: floats[FSlot] if set, else the loop local (inside the loop
// the closure engine always has the variable's intSet true).
type KScalarLocal struct {
	FSlot int
	Level int
}

// KARead reads arrays[Arr] at the given subscripts.
type KARead struct {
	Arr  int
	Subs []KSub
}

// KBin is a binary float op; Op is one of '+', '-', '*', '/'.  Each
// emitted operation is wrapped in float64(...) so the Go compiler may
// not fuse it (no FMA): results stay bit-identical to the closures.
type KBin struct {
	Op   byte
	L, R KExpr
}

// KIntrin is a canonical-arity intrinsic call (math.X).
type KIntrin struct {
	Name string
	Args []KExpr
}

func (KConst) kExpr()       {}
func (KLocal) kExpr()       {}
func (KSlotInt) kExpr()     {}
func (KScalar) kExpr()      {}
func (KScalarLocal) kExpr() {}
func (*KARead) kExpr()      {}
func (*KBin) kExpr()        {}
func (*KIntrin) kExpr()     {}

// KStmt is a kernel body statement.
type KStmt interface{ kStmt() }

// KLoop is one kernel loop level.  bounds[WinIdx] and bounds[WinIdx+1]
// hold the invocation's [winLo, winHi] value window (strip ∩ clamp;
// math.MinInt/MaxInt when unconstrained), applied exactly like
// iteratePlanLoop: step>0 runs max(lo,winLo)..min(hi,winHi); step<0
// runs min(lo,winHi) down to max(hi,winLo).
type KLoop struct {
	Var      string
	Slot     int // the variable's global int slot (restore semantics doc only)
	Level    int // dense kernel-local level index; locals are named i<Level>
	Step     int // ±1
	Lo, Hi   KAff
	ClampIdx int // frame clamp index, -1 when not clampable
	WinIdx   int // bounds[] index of this level's window pair
	Body     []KStmt
}

// KAssign is one guarded assignment.  bounds[BoundsIdx : BoundsIdx+2·KDims]
// holds the guard box over the kernel-scope dimensions ([1,0] pairs when
// the statement is disabled for this invocation); outer-nest dimensions
// are checked once by the precheck, not per point.
type KAssign struct {
	GuardIdx  int   // index into the frame's guard table (precheck input)
	NestSlots []int // full-nest slots, outer dims first (precheck input)
	Levels    []int // kernel levels enclosing this stmt, nest order
	BoundsIdx int
	KDims     int // == len(Levels); guard dims checked per point
	Scalar    bool
	FSlot     int    // scalar store
	Arr       int    // array store
	Subs      []KSub // array store subscripts
	RHS       KExpr
	Flops     float64
	Refs      []KRefCheck // every array access (LHS last), for the precheck
}

// KIf mirrors pIf: the condition is evaluated at every enclosing
// iteration point (it is panic-free by eligibility), then one arm runs.
type KIf struct {
	Op   string // "<" ">" "<=" ">=" "==" "/="
	L, R KExpr
	Then []KStmt
	Els  []KStmt
}

func (*KLoop) kStmt()   {}
func (*KAssign) kStmt() {}
func (*KIf) kStmt()     {}

// KernelUnit is the complete spec of one specializable loop nest.
type KernelUnit struct {
	Proc      string
	RootID    int // ir statement ID of the root loop
	RootDepth int // loops enclosing the root within the procedure
	Root      *KLoop
	Arrays    []KArray
	NumLevels int
	NumBounds int // total bounds[] length the invocation must pack
	// SlotNames documents the integer slots the unit reads (sorted slot →
	// name); informational, and part of the fingerprint so slot layout
	// changes cannot alias two different programs' units.
	SlotNames map[int]string
	// Points is a static per-invocation iteration-point estimate from the
	// declared loop bounds (0 when data-dependent); codegen uses it with
	// analysis.Predict to skip units too small to be worth specializing.
	Points float64

	fp string // memoized fingerprint
}

// Fingerprint returns the unit's content hash: a SHA-256 over a
// canonical encoding of the whole spec (ABI tag, loop structure,
// variable names, slot numbers, affine coefficients, array geometry,
// guard layout, and exact flop bits).  Two units share a fingerprint
// iff a single compiled kernel can serve both.
func (u *KernelUnit) Fingerprint() string {
	if u.fp != "" {
		return u.fp
	}
	h := sha256.New()
	w := func(vals ...interface{}) {
		for _, v := range vals {
			switch x := v.(type) {
			case string:
				var n [8]byte
				binary.LittleEndian.PutUint64(n[:], uint64(len(x)))
				h.Write(n[:])
				h.Write([]byte(x))
			case int:
				var n [8]byte
				binary.LittleEndian.PutUint64(n[:], uint64(int64(x)))
				h.Write(n[:])
			case bool:
				if x {
					h.Write([]byte{1})
				} else {
					h.Write([]byte{0})
				}
			case byte:
				h.Write([]byte{x})
			case float64:
				var n [8]byte
				binary.LittleEndian.PutUint64(n[:], math.Float64bits(x))
				h.Write(n[:])
			default:
				panic(fmt.Sprintf("spmd: kernel fingerprint: unhashable %T", v))
			}
		}
	}
	w(KernelABI, u.Proc, u.RootDepth, u.NumLevels, u.NumBounds)
	w("arrays", len(u.Arrays))
	for _, a := range u.Arrays {
		w(a.ASlot, a.Name, len(a.Lo))
		for k := range a.Lo {
			w(a.Lo[k], a.Hi[k], a.Stride[k])
		}
	}
	slots := make([]int, 0, len(u.SlotNames))
	for s := range u.SlotNames {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	w("slots", len(slots))
	for _, s := range slots {
		w(s, u.SlotNames[s])
	}
	hashStmt(w, u.Root)
	u.fp = hex.EncodeToString(h.Sum(nil))
	return u.fp
}

func hashAff(w func(...interface{}), a KAff) {
	w("aff", a.Const, len(a.Terms))
	for _, t := range a.Terms {
		w(t.Coef, t.Local, t.Level, t.Slot)
	}
}

func hashSub(w func(...interface{}), s KSub) {
	w("sub", s.HasVar, s.Coef, s.VarLocal, s.Level, s.VarSlot)
	hashAff(w, s.Off)
}

func hashExpr(w func(...interface{}), e KExpr) {
	switch x := e.(type) {
	case KConst:
		w("const", x.Val)
	case KLocal:
		w("local", x.Level)
	case KSlotInt:
		w("slotint", x.Slot)
	case KScalar:
		w("scalar", x.FSlot, x.ISlot)
	case KScalarLocal:
		w("scalarlocal", x.FSlot, x.Level)
	case *KARead:
		w("aread", x.Arr, len(x.Subs))
		for _, s := range x.Subs {
			hashSub(w, s)
		}
	case *KBin:
		w("bin", x.Op)
		hashExpr(w, x.L)
		hashExpr(w, x.R)
	case *KIntrin:
		w("intrin", x.Name, len(x.Args))
		for _, a := range x.Args {
			hashExpr(w, a)
		}
	default:
		panic(fmt.Sprintf("spmd: kernel fingerprint: unknown expr %T", e))
	}
}

func hashStmt(w func(...interface{}), s KStmt) {
	switch x := s.(type) {
	case *KLoop:
		w("loop", x.Var, x.Slot, x.Level, x.Step, x.ClampIdx, x.WinIdx, len(x.Body))
		hashAff(w, x.Lo)
		hashAff(w, x.Hi)
		for _, b := range x.Body {
			hashStmt(w, b)
		}
	case *KAssign:
		w("assign", x.GuardIdx, len(x.NestSlots))
		for _, sl := range x.NestSlots {
			w(sl)
		}
		w(len(x.Levels))
		for _, lv := range x.Levels {
			w(lv)
		}
		w(x.BoundsIdx, x.KDims, x.Scalar, x.FSlot, x.Arr, len(x.Subs))
		for _, sb := range x.Subs {
			hashSub(w, sb)
		}
		hashExpr(w, x.RHS)
		w(x.Flops)
	case *KIf:
		w("if", x.Op)
		hashExpr(w, x.L)
		hashExpr(w, x.R)
		w(len(x.Then))
		for _, b := range x.Then {
			hashStmt(w, b)
		}
		w(len(x.Els))
		for _, b := range x.Els {
			hashStmt(w, b)
		}
	default:
		panic(fmt.Sprintf("spmd: kernel fingerprint: unknown stmt %T", s))
	}
}

// --- kernel registry -----------------------------------------------------------

var kernelReg = struct {
	mu sync.RWMutex
	m  map[string]KernelFunc
}{m: map[string]KernelFunc{}}

// RegisterKernel makes a compiled kernel available to every subsequent
// EngineCodegen execution whose program contains a unit with the given
// fingerprint.  Registering the same fingerprint again replaces the
// previous function (generated corpus and a freshly built plugin may
// both carry a kernel; they are bit-identical by construction).
func RegisterKernel(fingerprint string, fn KernelFunc) {
	if fn == nil {
		return
	}
	kernelReg.mu.Lock()
	kernelReg.m[fingerprint] = fn
	kernelReg.mu.Unlock()
}

// KernelFor returns the registered kernel for a fingerprint, or nil.
func KernelFor(fingerprint string) KernelFunc {
	kernelReg.mu.RLock()
	fn := kernelReg.m[fingerprint]
	kernelReg.mu.RUnlock()
	return fn
}

// RegisteredKernels reports how many kernels the registry holds.
func RegisteredKernels() int {
	kernelReg.mu.RLock()
	n := len(kernelReg.m)
	kernelReg.mu.RUnlock()
	return n
}
