// Package dep implements data-dependence analysis for the mini-HPF IR:
// ZIV and strong-SIV subscript tests over the restricted affine subscript
// forms, distance/direction vectors over common loop nests, and the
// loop-independent vs loop-carried classification that drives the
// communication-sensitive loop distribution of SC'98 §5 and the data
// availability analysis of §7.  It also validates NEW (privatizable)
// directives and recognizes reductions.
package dep

import (
	"fmt"

	"dhpf/internal/ir"
)

// Kind classifies a dependence by the access types of its endpoints.
type Kind int

const (
	Flow   Kind = iota // write → read (true dependence)
	Anti               // read → write
	Output             // write → write
	Input              // read → read (only reported when requested)
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	case Input:
		return "input"
	}
	return "?"
}

// Dist is one component of a distance vector.
type Dist struct {
	Known bool
	D     int // valid when Known
}

func (d Dist) String() string {
	if !d.Known {
		return "*"
	}
	return fmt.Sprintf("%d", d.D)
}

// Dependence records that DstRef in Dst depends on SrcRef in Src: some
// iteration of Dst accesses a location that an earlier-or-equal iteration
// of Src accessed, with at least one access a write.
type Dependence struct {
	Kind     Kind
	Src, Dst *ir.Assign
	SrcRef   *ir.ArrayRef
	DstRef   *ir.ArrayRef
	// CommonNest is the loop nest shared by Src and Dst, outermost first.
	CommonNest []*ir.Loop
	// Distance has one entry per common loop: iteration distance from the
	// source iteration to the destination iteration.
	Distance []Dist
	// Level is 1-based index of the carrying loop in CommonNest, or 0 for
	// a loop-independent dependence.
	Level int
}

// LoopIndependent reports whether the dependence holds within a single
// iteration of every common loop.
func (d *Dependence) LoopIndependent() bool { return d.Level == 0 }

// CarriedBy reports whether the dependence is carried by the given loop.
func (d *Dependence) CarriedBy(l *ir.Loop) bool {
	return d.Level >= 1 && d.Level <= len(d.CommonNest) && d.CommonNest[d.Level-1] == l
}

func (d *Dependence) String() string {
	return fmt.Sprintf("%s dep %v -> %v dist %v level %d",
		d.Kind, d.SrcRef, d.DstRef, d.Distance, d.Level)
}

// access pairs a reference with its statement, nest and whether it writes.
type access struct {
	ref   *ir.ArrayRef
	stmt  *ir.Assign
	nest  []*ir.Loop
	write bool
	order int // textual order of the statement
}

// Analyze computes the dependences among the assignments of a body.
// Input (read-read) dependences are omitted.  Scalar accesses (rank-0
// refs) participate: every pair of same-iteration or cross-iteration
// scalar write/read conflicts is reported with the appropriate distances
// (a scalar behaves like an array reference with zero dimensions, always
// overlapping).
func Analyze(body []ir.Stmt) []*Dependence {
	var accs []access
	order := 0
	ir.Walk(body, func(s ir.Stmt, loops []*ir.Loop) bool {
		a, ok := s.(*ir.Assign)
		if !ok {
			return true
		}
		order++
		nest := make([]*ir.Loop, len(loops))
		copy(nest, loops)
		accs = append(accs, access{ref: a.LHS, stmt: a, nest: nest, write: true, order: order})
		for _, r := range ir.Refs(a.RHS) {
			accs = append(accs, access{ref: r, stmt: a, nest: nest, write: false, order: order})
		}
		// Scalar reads on the RHS.
		for _, name := range ir.ScalarReads(a.RHS) {
			accs = append(accs, access{ref: &ir.ArrayRef{Name: name}, stmt: a, nest: nest, write: false, order: order})
		}
		return true
	})

	var deps []*Dependence
	for i := range accs {
		for j := range accs {
			a, b := &accs[i], &accs[j]
			if a.ref.Name != b.ref.Name {
				continue
			}
			if !a.write && !b.write {
				continue
			}
			deps = append(deps, testPair(a, b)...)
		}
	}
	return deps
}

// testPair tests for a dependence with source a and destination b: does
// some iteration of a conflict with a not-earlier iteration of b?  A pair
// whose distance vector admits both the all-zero vector and a
// lexicographically positive vector (e.g. scalar accesses, distances
// unconstrained by any subscript) yields two dependences: one
// loop-independent and one carried at the outermost carriable level —
// the standard level-wise decomposition of a direction vector.
func testPair(a, b *access) []*Dependence {
	common := ir.CommonPrefix(a.nest, b.nest)
	if len(a.ref.Subs) != len(b.ref.Subs) {
		// Whole-array vs element reference: conservative dependence with
		// unknown distances.
		return emit(a, b, common, unknownDists(len(common)))
	}

	// For each common loop, derive the distance constraint implied by the
	// subscript pair(s) that use its index variable.
	dist := make([]Dist, len(common))
	constrained := make([]bool, len(common))
	for k := range a.ref.Subs {
		sa, sb := a.ref.Subs[k], b.ref.Subs[k]
		switch {
		case sa.Var == "" && sb.Var == "":
			// ZIV: both loop-invariant.  Distinct constant offsets can
			// never overlap; symbolic differences are conservatively
			// assumed to overlap.
			diff := sa.Off.Sub(sb.Off)
			if c, ok := diff.IsConst(); ok && c != 0 {
				return nil
			}
		case sa.Var != "" && sa.Var == sb.Var && sa.Coef == sb.Coef:
			// Strong SIV on a shared variable: a at iteration i and b at
			// iteration i' touch the same element iff
			// coef*i + ca = coef*i' + cb  ⇒  i' - i = (ca-cb)/coef.
			li := indexOfVar(common, sa.Var)
			if li < 0 {
				// Variable not in the common nest (sibling loops with the
				// same name): the ranges may overlap; treat as
				// unconstrained.
				continue
			}
			diff := sa.Off.Sub(sb.Off)
			c, ok := diff.IsConst()
			if !ok {
				// Symbolic distance: unknown.
				constrained[li] = true
				dist[li] = Dist{Known: false}
				continue
			}
			d := c * sa.Coef // (ca-cb)/coef with coef ∈ {1,-1}
			if constrained[li] && dist[li].Known && dist[li].D != d {
				// Two subscript pairs demand inconsistent distances.
				return nil
			}
			if !constrained[li] || dist[li].Known {
				dist[li] = Dist{Known: true, D: d}
			}
			constrained[li] = true
		default:
			// Weak SIV / MIV / mixed: conservative, leave the loop (if
			// any) unconstrained ⇒ unknown distance.
			if sa.Var != "" {
				if li := indexOfVar(common, sa.Var); li >= 0 {
					if !constrained[li] || !dist[li].Known || dist[li].D != 0 {
						constrained[li] = true
						dist[li] = Dist{Known: false}
					}
				}
			}
			if sb.Var != "" && sb.Var != sa.Var {
				if li := indexOfVar(common, sb.Var); li >= 0 {
					if !constrained[li] || !dist[li].Known || dist[li].D != 0 {
						constrained[li] = true
						dist[li] = Dist{Known: false}
					}
				}
			}
		}
	}
	// Loops never constrained by any subscript: both statements access
	// the same element on every iteration ⇒ distance can be anything.
	for li := range dist {
		if !constrained[li] {
			dist[li] = Dist{Known: false}
		}
	}

	return emit(a, b, common, dist)
}

// emit decomposes a distance vector into its dependence instances,
// level-wise (the standard direction-vector decomposition):
//
//   - a carried dependence at *every* level k where all outer components
//     admit zero and component k admits a positive trip count (distance ×
//     step > 0) — e.g. (∗, +1) inside a time-step loop is carried both by
//     the step loop and by the inner loop;
//   - a loop-independent dependence when every component admits zero and
//     the source textually precedes the destination.
//
// A known component with a non-zero value stops the scan after its own
// level (deeper levels would need it to be zero); a known strictly
// negative trip count means the direction at that level is backward.
func emit(a, b *access, common []*ir.Loop, dist []Dist) []*Dependence {
	admitsZero := func(d Dist) bool { return !d.Known || d.D == 0 }
	admitsPos := func(li int, d Dist) bool {
		if !d.Known {
			return true
		}
		return d.D*common[li].Step > 0
	}

	var out []*Dependence

	// Carried dependences at every carriable level.
	for li, d := range dist {
		if admitsPos(li, d) {
			out = append(out, makeDep(a, b, common, dist, li+1))
		}
		if !admitsZero(d) {
			break // deeper levels need this component to be zero
		}
	}

	// Loop-independent instance.
	zeroOK := true
	for _, d := range dist {
		if !admitsZero(d) {
			zeroOK = false
			break
		}
	}
	if zeroOK && a.stmt != b.stmt && a.order < b.order {
		zero := make([]Dist, len(dist))
		for i := range zero {
			zero[i] = Dist{Known: true, D: 0}
		}
		out = append(out, makeDep(a, b, common, zero, 0))
	}
	return out
}

func makeDep(a, b *access, common []*ir.Loop, dist []Dist, level int) *Dependence {
	d := &Dependence{
		Src: a.stmt, Dst: b.stmt,
		SrcRef: a.ref, DstRef: b.ref,
		CommonNest: common,
		Distance:   dist,
	}
	switch {
	case a.write && b.write:
		d.Kind = Output
	case a.write:
		d.Kind = Flow
	case b.write:
		d.Kind = Anti
	default:
		d.Kind = Input
	}
	d.Level = level
	return d
}

func indexOfVar(nest []*ir.Loop, v string) int {
	for i, l := range nest {
		if l.Var == v {
			return i
		}
	}
	return -1
}

func unknownDists(n int) []Dist {
	out := make([]Dist, n)
	for i := range out {
		out[i] = Dist{Known: false}
	}
	return out
}

// LoopIndependentDeps filters to the loop-independent dependences whose
// endpoints both sit (possibly nested) inside the given loop.
func LoopIndependentDeps(deps []*Dependence, l *ir.Loop) []*Dependence {
	var out []*Dependence
	for _, d := range deps {
		if !d.LoopIndependent() {
			continue
		}
		if nestContains(d.CommonNest, l) {
			out = append(out, d)
		}
	}
	return out
}

// CarriedDeps filters to dependences carried by the given loop.
func CarriedDeps(deps []*Dependence, l *ir.Loop) []*Dependence {
	var out []*Dependence
	for _, d := range deps {
		if d.CarriedBy(l) {
			out = append(out, d)
		}
	}
	return out
}

func nestContains(nest []*ir.Loop, l *ir.Loop) bool {
	for _, x := range nest {
		if x == l {
			return true
		}
	}
	return false
}
