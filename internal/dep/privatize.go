package dep

import (
	"fmt"

	"dhpf/internal/ir"
	"dhpf/internal/iset"
)

// ValidateNew checks the definition-before-use requirement of the HPF NEW
// directive for variable name on loop l (SC'98 §4.1): every element of
// the variable read within one iteration of l must have been written
// earlier within that same iteration.  (The directive's second condition
// — values not live after the loop — needs whole-program liveness and
// remains a user assertion, exactly as in HPF.)
//
// The check is set-based: the loop index of l is sampled at its first,
// middle and last values (subscripts are affine in it, so violations show
// up at the extremes); for each sample, every read's element set must be
// covered by the union of element sets of textually earlier writes.
// Loop variables of loops inside l expand to their full ranges; loop
// variables of loops outside l are sampled at their lower bounds.  The
// check is a linter: it is conservative about order within a shared
// innermost loop (a read of an element the same inner loop writes only
// in a later inner iteration can slip through), matching dHPF's
// treatment of NEW as a user-supplied assertion.
func ValidateNew(l *ir.Loop, name string, bind map[string]int) error {
	for _, b := range NewBailouts(l, name, bind) {
		return fmt.Errorf("dep: NEW(%s) on loop %s: read %s in statement %d reads %v, only %v written earlier in the iteration",
			name, l.Var, b.Ref, b.Stmt, b.Read, b.Written)
	}
	return nil
}

// Bailout is one reason the privatization linter could not validate the
// definition-before-use requirement for a NEW/LOCALIZE variable: a read
// whose element set is not covered by textually earlier writes within one
// sampled iteration of the privatizing loop.
type Bailout struct {
	Loop    string   // privatizing loop variable
	Var     string   // the NEW/LOCALIZE variable
	Stmt    int      // statement containing the offending read
	Ref     string   // rendered reference
	Sample  int      // the sampled value of the privatizing loop index
	Read    iset.Set // elements read
	Written iset.Set // elements covered by earlier writes
}

// Why renders the bail-out reason as one sentence.
func (b Bailout) Why() string {
	return fmt.Sprintf("read %s in stmt %d (at %s=%d) reads %v but only %v is written earlier in the iteration",
		b.Ref, b.Stmt, b.Loop, b.Sample, b.Read, b.Written)
}

// NewBailouts runs ValidateNew's set-based def-before-use check and
// returns every violation as a structured bail-out instead of stopping at
// the first.  An empty result means the directive validated.  Duplicate
// violations of one read site across index samples are reported once (the
// first sample that exposes them).
func NewBailouts(l *ir.Loop, name string, bind map[string]int) []Bailout {
	type site struct {
		ref   *ir.ArrayRef
		nest  []*ir.Loop
		order int
		write bool
		id    int
	}
	var sites []site
	order := 0
	ir.Walk(l.Body, func(s ir.Stmt, loops []*ir.Loop) bool {
		a, ok := s.(*ir.Assign)
		if !ok {
			return true
		}
		order++
		nest := make([]*ir.Loop, len(loops))
		copy(nest, loops)
		if a.LHS.Name == name {
			sites = append(sites, site{ref: a.LHS, nest: nest, order: order, write: true, id: a.ID})
		}
		for _, r := range ir.Refs(a.RHS) {
			if r.Name == name {
				sites = append(sites, site{ref: r, nest: nest, order: order, id: a.ID})
			}
		}
		for _, sn := range ir.ScalarReads(a.RHS) {
			if sn == name {
				sites = append(sites, site{ref: &ir.ArrayRef{Name: name}, nest: nest, order: order, id: a.ID})
			}
		}
		return true
	})

	lo, hi := l.Lo.Eval(bind), l.Hi.Eval(bind)
	if l.Step < 0 {
		lo, hi = hi, lo
	}
	if lo > hi {
		return nil // zero-trip loop
	}
	samples := []int{lo, (lo + hi) / 2, hi}

	var out []Bailout
	seen := map[[2]int]bool{} // (stmt, order) already reported
	for _, ival := range samples {
		env := map[string]int{l.Var: ival}
		for _, rd := range sites {
			if rd.write || seen[[2]int{rd.id, rd.order}] {
				continue
			}
			readSet := refElemSet(rd.ref, rd.nest, env, bind)
			if readSet.IsEmpty() {
				continue
			}
			written := iset.EmptySet(readSet.Rank())
			for _, wr := range sites {
				if !wr.write || wr.order > rd.order {
					continue
				}
				ws := refElemSet(wr.ref, wr.nest, env, bind)
				if ws.Rank() == written.Rank() {
					written = written.Union(ws)
				}
			}
			if !readSet.SubsetOf(written) {
				seen[[2]int{rd.id, rd.order}] = true
				out = append(out, Bailout{
					Loop: l.Var, Var: name, Stmt: rd.id, Ref: rd.ref.String(),
					Sample: ival, Read: readSet, Written: written,
				})
			}
		}
	}
	return out
}

// refElemSet computes the set of elements a reference touches across the
// full ranges of its enclosing inner loops, with env fixing specific loop
// variables (the sampled NEW-loop index) and bind supplying parameters.
// Loop variables found in neither expand via their loop in nest; unknown
// variables evaluate at 0.
func refElemSet(ref *ir.ArrayRef, nest []*ir.Loop, env map[string]int, bind map[string]int) iset.Set {
	if len(ref.Subs) == 0 {
		return iset.FromBox(iset.NewBox([]int{}, []int{})) // scalar: the single 0-D point
	}
	lo := make([]int, len(ref.Subs))
	hi := make([]int, len(ref.Subs))
	for k, s := range ref.Subs {
		off := s.Off.Eval(bind)
		if s.Var == "" {
			lo[k], hi[k] = off, off
			continue
		}
		if v, ok := env[s.Var]; ok {
			val := s.Coef*v + off
			lo[k], hi[k] = val, val
			continue
		}
		if loop := ir.LoopByVar(nest, s.Var); loop != nil {
			a := loop.Lo.Eval(bind)
			b := loop.Hi.Eval(bind)
			if a > b {
				a, b = b, a
			}
			va := s.Coef*a + off
			vb := s.Coef*b + off
			lo[k], hi[k] = min(va, vb), max(va, vb)
			continue
		}
		lo[k], hi[k] = off, off
	}
	return iset.FromBox(iset.NewBox(lo, hi))
}

// Reduction describes a recognized reduction statement s = s op expr.
type Reduction struct {
	Stmt *ir.Assign
	Var  string
	Op   byte
}

// FindReductions recognizes scalar reduction statements of the shapes
// s = s + e, s = e + s, s = s * e, s = e * s, s = min(s,e), s = max(s,e)
// inside the body.
func FindReductions(body []ir.Stmt) []Reduction {
	var out []Reduction
	ir.Walk(body, func(st ir.Stmt, _ []*ir.Loop) bool {
		a, ok := st.(*ir.Assign)
		if !ok || len(a.LHS.Subs) != 0 {
			return true
		}
		name := a.LHS.Name
		switch rhs := a.RHS.(type) {
		case *ir.Bin:
			if rhs.Op != '+' && rhs.Op != '*' {
				return true
			}
			if isScalar(rhs.L, name) && !usesScalar(rhs.R, name) {
				out = append(out, Reduction{Stmt: a, Var: name, Op: rhs.Op})
			} else if isScalar(rhs.R, name) && !usesScalar(rhs.L, name) {
				out = append(out, Reduction{Stmt: a, Var: name, Op: rhs.Op})
			}
		case *ir.Intrinsic:
			if (rhs.Name == "min" || rhs.Name == "max") && len(rhs.Args) == 2 {
				op := byte('<')
				if rhs.Name == "max" {
					op = '>'
				}
				if isScalar(rhs.Args[0], name) && !usesScalar(rhs.Args[1], name) {
					out = append(out, Reduction{Stmt: a, Var: name, Op: op})
				} else if isScalar(rhs.Args[1], name) && !usesScalar(rhs.Args[0], name) {
					out = append(out, Reduction{Stmt: a, Var: name, Op: op})
				}
			}
		}
		return true
	})
	return out
}

func isScalar(e ir.Expr, name string) bool {
	s, ok := e.(ir.ScalarRef)
	return ok && s.Name == name
}

func usesScalar(e ir.Expr, name string) bool {
	found := false
	ir.WalkExpr(e, func(x ir.Expr) {
		if s, ok := x.(ir.ScalarRef); ok && s.Name == name {
			found = true
		}
	})
	return found
}
