package dep

import (
	"testing"

	"dhpf/internal/ir"
	"dhpf/internal/parser"
)

func mustBody(t *testing.T, src string) []ir.Stmt {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Main().Body
}

func findDeps(deps []*Dependence, kind Kind) []*Dependence {
	var out []*Dependence
	for _, d := range deps {
		if d.Kind == kind {
			out = append(out, d)
		}
	}
	return out
}

func TestLoopCarriedFlow(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  do i = 1, N-1
    a(i) = a(i-1)
  enddo
end
`)
	deps := Analyze(body)
	flows := findDeps(deps, Flow)
	if len(flows) != 1 {
		t.Fatalf("flow deps = %d, want 1 (%v)", len(flows), deps)
	}
	d := flows[0]
	if d.Level != 1 {
		t.Errorf("level = %d, want 1", d.Level)
	}
	if !d.Distance[0].Known || d.Distance[0].D != 1 {
		t.Errorf("distance = %v, want 1", d.Distance[0])
	}
	if d.LoopIndependent() {
		t.Error("carried dep reported loop-independent")
	}
}

func TestAntiDependence(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  do i = 0, N-2
    a(i) = a(i+1)
  enddo
end
`)
	deps := Analyze(body)
	antis := findDeps(deps, Anti)
	if len(antis) != 1 {
		t.Fatalf("anti deps = %d (%v)", len(antis), deps)
	}
	if antis[0].Distance[0].D != 1 || antis[0].Level != 1 {
		t.Errorf("anti dep = %v", antis[0])
	}
	// No flow dependence in this direction (a(i+1) read before write).
	if len(findDeps(deps, Flow)) != 0 {
		t.Errorf("unexpected flow deps: %v", findDeps(deps, Flow))
	}
}

func TestLoopIndependentDep(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  do i = 0, N-1
    a(i) = 2.0
    b(i) = a(i)
  enddo
end
`)
	deps := Analyze(body)
	flows := findDeps(deps, Flow)
	if len(flows) != 1 {
		t.Fatalf("flow deps = %d (%v)", len(flows), deps)
	}
	d := flows[0]
	if !d.LoopIndependent() {
		t.Errorf("level = %d, want 0", d.Level)
	}
	l := body[0].(*ir.Loop)
	lis := LoopIndependentDeps(deps, l)
	if len(lis) != 1 {
		t.Errorf("LoopIndependentDeps = %d", len(lis))
	}
}

func TestNoDependenceDisjointConstants(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real a(0:N-1, 0:N-1)
  do i = 0, N-1
    a(i, 3) = 1.0
    a(i, 5) = a(i, 4)
  enddo
end
`)
	deps := Analyze(body)
	for _, d := range deps {
		if d.SrcRef.Name == "a" && d.Kind != Output {
			t.Errorf("unexpected dep: %v", d)
		}
	}
	// The two writes hit different columns: no output dep either.
	if n := len(findDeps(deps, Output)); n != 0 {
		t.Errorf("output deps = %d", n)
	}
}

func TestTwoDimensionalDistance(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real a(0:N-1, 0:N-1)
  do j = 1, N-2
    do i = 1, N-2
      a(i, j) = a(i-1, j-1)
    enddo
  enddo
end
`)
	deps := Analyze(body)
	flows := findDeps(deps, Flow)
	if len(flows) != 1 {
		t.Fatalf("flow deps = %d", len(flows))
	}
	d := flows[0]
	// Distance (j,i) = (1,1), carried by the outer (j) loop.
	if d.Distance[0].D != 1 || d.Distance[1].D != 1 || d.Level != 1 {
		t.Errorf("dep = %v", d)
	}
}

func TestBackwardDirectionFiltered(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  real b(0:N-1)
  do i = 0, N-2
    b(i) = a(i+1)
    a(i) = 1.0
  enddo
end
`)
	// The write a(i) and read a(i+1): read at iter i reads the element
	// the write produces at iter i+1.  So the dependence is anti
	// (read → later write), distance +1; there is no flow dep.
	deps := Analyze(body)
	if n := len(findDeps(deps, Flow)); n != 0 {
		t.Errorf("flow deps = %d, want 0", n)
	}
	antis := findDeps(deps, Anti)
	if len(antis) != 1 || antis[0].Distance[0].D != 1 {
		t.Errorf("anti = %v", antis)
	}
}

func TestScalarDependences(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  real s
  do i = 0, N-1
    s = a(i) * 2.0
    a(i) = s
  enddo
end
`)
	deps := Analyze(body)
	// s: loop-independent flow (s= → =s), carried anti (=s in iter i,
	// s= in iter i+1), and carried output (s= each iteration).
	var liFlow, output bool
	for _, d := range deps {
		if d.SrcRef.Name != "s" {
			continue
		}
		if d.Kind == Flow && d.LoopIndependent() {
			liFlow = true
		}
		if d.Kind == Output {
			output = true
		}
	}
	if !liFlow {
		t.Error("missing loop-independent scalar flow dep")
	}
	if !output {
		t.Error("missing scalar output dep")
	}
}

func TestSymbolicZIVConservative(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
param M = 3
subroutine main()
  real a(0:N-1)
  do i = 0, N-1
    a(M) = 1.0
    a(4) = a(M)
  enddo
end
`)
	// M vs 4: unknown at analysis time (M is symbolic) ⇒ conservative
	// output dependence between the writes must be reported.
	deps := Analyze(body)
	if n := len(findDeps(deps, Output)); n == 0 {
		t.Error("expected conservative output dep for symbolic ZIV pair")
	}
}

func TestBackwardLoopCarried(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  do i = N-2, 0, -1
    a(i) = a(i+1)
  enddo
end
`)
	deps := Analyze(body)
	flows := findDeps(deps, Flow)
	if len(flows) != 1 {
		t.Fatalf("flow deps = %d (%v)", len(flows), deps)
	}
	// With step -1, the element distance +1 means the *earlier* iteration
	// (larger i) wrote it: flow dep carried by the loop.
	if flows[0].Level != 1 {
		t.Errorf("level = %d", flows[0].Level)
	}
}

func TestCarriedDepsFilter(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real a(0:N-1, 0:N-1)
  do j = 1, N-2
    do i = 1, N-2
      a(i, j) = a(i, j-1)
    enddo
  enddo
end
`)
	deps := Analyze(body)
	outer := body[0].(*ir.Loop)
	inner := outer.Body[0].(*ir.Loop)
	if n := len(CarriedDeps(deps, outer)); n != 1 {
		t.Errorf("outer carried = %d", n)
	}
	if n := len(CarriedDeps(deps, inner)); n != 0 {
		t.Errorf("inner carried = %d", n)
	}
}

// --- NEW validation --------------------------------------------------------

func TestValidateNewAccepts(t *testing.T) {
	// The paper's lhsy pattern: cv defined then used in the same i
	// iteration.
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real lhs(0:N-1, 0:N-1)
  real cv(0:N-1)
  !hpf$ independent, new(cv)
  do i = 1, N-2
    do j = 0, N-1
      cv(j) = 1.0
    enddo
    do j = 1, N-2
      lhs(i, j) = cv(j-1) + cv(j+1)
    enddo
  enddo
end
`)
	l := body[0].(*ir.Loop)
	if err := ValidateNew(l, "cv", map[string]int{"N": 16}); err != nil {
		t.Fatalf("ValidateNew rejected valid NEW: %v", err)
	}
}

func TestValidateNewRejectsUpwardExposedRead(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real lhs(0:N-1, 0:N-1)
  real cv(0:N-1)
  !hpf$ independent, new(cv)
  do i = 1, N-2
    do j = 1, N-2
      lhs(i, j) = cv(j)
    enddo
    do j = 0, N-1
      cv(j) = 1.0
    enddo
  enddo
end
`)
	l := body[0].(*ir.Loop)
	if err := ValidateNew(l, "cv", map[string]int{"N": 16}); err == nil {
		t.Fatal("ValidateNew accepted an upward-exposed read")
	}
}

func TestValidateNewRejectsCrossIteration(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real lhs(0:N-1, 0:N-1)
  real cv(0:N-1, 0:N-1)
  !hpf$ independent, new(cv)
  do i = 1, N-2
    do j = 0, N-1
      cv(j, i) = 1.0
    enddo
    do j = 1, N-2
      lhs(i, j) = cv(j, i-1)
    enddo
  enddo
end
`)
	l := body[0].(*ir.Loop)
	if err := ValidateNew(l, "cv", map[string]int{"N": 16}); err == nil {
		t.Fatal("ValidateNew accepted a cross-iteration use")
	}
}

// --- reductions ------------------------------------------------------------

func TestFindReductions(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  real s
  real m
  do i = 0, N-1
    s = s + a(i)
    m = max(m, a(i))
  enddo
end
`)
	reds := FindReductions(body)
	if len(reds) != 2 {
		t.Fatalf("reductions = %d (%v)", len(reds), reds)
	}
	if reds[0].Var != "s" || reds[0].Op != '+' {
		t.Errorf("red[0] = %+v", reds[0])
	}
	if reds[1].Var != "m" || reds[1].Op != '>' {
		t.Errorf("red[1] = %+v", reds[1])
	}
}

func TestNonReductionNotRecognized(t *testing.T) {
	body := mustBody(t, `
program t
param N = 16
subroutine main()
  real a(0:N-1)
  real s
  do i = 0, N-1
    s = s + s
    s = s - a(i)
  enddo
end
`)
	if reds := FindReductions(body); len(reds) != 0 {
		t.Fatalf("false reductions: %v", reds)
	}
}
