package passes

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"sort"
)

// fingerprintVersion is bumped whenever the canonical encoding below (or
// the meaning of any Options field) changes, so stale cache keys from an
// older build can never alias a new configuration.
const fingerprintVersion = "dhpf-options-v2"

// Fingerprint returns a stable content hash of the options: two Options
// values that configure the same pipeline (e.g. Disable lists that are
// permutations of each other, or contain duplicates) hash identically,
// and any semantic difference — a toggled optimization, a different NEW
// propagation mode, pipeline grain, or instrumentation — yields a
// different hash.  It is the Options half of the compile-cache key (see
// FingerprintKey).
func (o Options) Fingerprint() string {
	h := sha256.New()
	writeOptions(h, o)
	return hex.EncodeToString(h.Sum(nil))
}

// FingerprintKey is the canonical content address of one compilation:
// a stable hash of (source, params, options).  Equal inputs — up to
// Options canonicalization and param-map ordering — produce equal keys;
// dhpf.Fingerprint exposes it to API users and internal/service keys its
// program cache with it.
func FingerprintKey(source string, params map[string]int, o Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00src:%d\x00", fingerprintVersion, len(source))
	io.WriteString(h, source)
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Fprintf(h, "\x00params:%d\x00", len(names))
	for _, k := range names {
		fmt.Fprintf(h, "%d:%s=%d\x00", len(k), k, params[k])
	}
	writeOptions(h, o)
	return hex.EncodeToString(h.Sum(nil))
}

// writeOptions streams the canonical encoding of Options into h: every
// field in a fixed order, labeled and delimited, with Disable sorted and
// deduplicated (disabling a pass twice is the same ablation).
func writeOptions(h hash.Hash, o Options) {
	fmt.Fprintf(h, "%s\x00newprop=%d\x00localize=%t\x00loopdist=%t\x00interproc=%t\x00maxcombos=%d\x00",
		fingerprintVersion, o.CP.NewProp, o.CP.Localize, o.CP.LoopDist, o.CP.Interproc, o.CP.MaxCombos)
	fmt.Fprintf(h, "availability=%t\x00wbelim=%t\x00grain=%d\x00instrument=%t\x00",
		o.Comm.Availability, o.Comm.RedundantWriteback, o.PipelineGrain, o.Instrument)
	// Backend is canonicalized so "" and "mp" (the same configuration)
	// hash identically; an unknown name still hashes distinctly and is
	// rejected later by BuildPipeline.
	backend := o.Backend
	if b, err := ParseBackend(backend); err == nil {
		backend = b
	}
	fmt.Fprintf(h, "backend=%d:%s\x00", len(backend), backend)
	disable := append([]string{}, o.Disable...)
	sort.Strings(disable)
	fmt.Fprintf(h, "disable:")
	prev := ""
	for i, d := range disable {
		if i > 0 && d == prev {
			continue
		}
		fmt.Fprintf(h, "%d:%s\x00", len(d), d)
		prev = d
	}
}
