package passes

import (
	"strings"
	"testing"

	"dhpf/internal/cache"
	"dhpf/internal/cp"
	"dhpf/internal/hpf"
	"dhpf/internal/parser"
)

// fpSrc is a three-unit program: main calls both leaves, the leaves are
// independent of each other.
const fpSrc = `
program fp
param N = 32
!hpf$ processors procs(2)
!hpf$ template tm(N)
!hpf$ align v with tm(d0)
!hpf$ distribute tm(BLOCK) onto procs

subroutine scale(v)
  real v(0:N-1)
  do i = 1, N-2
    v(i) = v(i) * 0.5
  enddo
end

subroutine smooth(v)
  real v(0:N-1)
  do i = 1, N-2
    v(i) = 0.25*(v(i-1) + v(i+1))
  enddo
end

subroutine main()
  real v(0:N-1)
  do t = 1, 4
    call scale(v)
    call smooth(v)
  enddo
end
`

// fpsFor parses and fingerprints a source, returning the per-unit and
// per-environment hashes keyed by procedure name.
func fpsFor(t *testing.T, src string, opt Options) (unit, env map[string]string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bind, err := hpf.Bind(prog, nil)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	ctx, err := cp.NewContextNoDeps(prog, bind)
	if err != nil {
		t.Fatalf("context: %v", err)
	}
	fps := fingerprintUnits(ctx, opt, "", nil)
	unit, env = map[string]string{}, map[string]string{}
	for _, p := range prog.Procs {
		unit[p.Name] = fps.Unit[p]
		env[p.Name] = fps.Env[p]
	}
	return unit, env
}

// Editing one procedure changes only its own unit fingerprint, and the
// environment fingerprints of exactly it and its callers.
func TestFingerprintEditIsolation(t *testing.T) {
	unit0, env0 := fpsFor(t, fpSrc, DefaultOptions())
	edited := strings.Replace(fpSrc, "0.25*(v(i-1) + v(i+1))", "0.26*(v(i-1) + v(i+1))", 1)
	unit1, env1 := fpsFor(t, edited, DefaultOptions())

	if unit1["smooth"] == unit0["smooth"] {
		t.Error("edited smooth kept its unit fingerprint")
	}
	if unit1["scale"] != unit0["scale"] || unit1["main"] != unit0["main"] {
		t.Error("editing smooth changed another procedure's unit fingerprint")
	}
	if env1["smooth"] == env0["smooth"] {
		t.Error("edited smooth kept its env fingerprint")
	}
	if env1["main"] == env0["main"] {
		t.Error("main calls smooth; its env fingerprint must change with the callee")
	}
	if env1["scale"] != env0["scale"] {
		t.Error("scale does not depend on smooth; its env fingerprint changed")
	}
}

// Renaming one procedure (and its call sites) leaves unrelated
// procedures' fingerprints unchanged.
func TestFingerprintRenameIsolation(t *testing.T) {
	_, env0 := fpsFor(t, fpSrc, DefaultOptions())
	renamed := strings.ReplaceAll(fpSrc, "smooth", "blur")
	unit1, env1 := fpsFor(t, renamed, DefaultOptions())

	if _, ok := unit1["blur"]; !ok {
		t.Fatal("renamed procedure missing")
	}
	if env1["scale"] != env0["scale"] {
		t.Error("renaming smooth changed scale's env fingerprint")
	}
	if env1["main"] == env0["main"] {
		t.Error("main's call target was renamed; its env fingerprint must change")
	}
}

// Reordering procedure definitions changes nothing: fingerprints are
// content hashes, not position hashes — even though reordering renumbers
// every statement ID in the program.
func TestFingerprintReorderInvariance(t *testing.T) {
	unit0, env0 := fpsFor(t, fpSrc, DefaultOptions())
	scaleIdx := strings.Index(fpSrc, "subroutine scale")
	smoothIdx := strings.Index(fpSrc, "subroutine smooth")
	mainIdx := strings.Index(fpSrc, "subroutine main")
	reordered := fpSrc[:scaleIdx] + fpSrc[smoothIdx:mainIdx] + fpSrc[scaleIdx:smoothIdx] + fpSrc[mainIdx:]
	unit1, env1 := fpsFor(t, reordered, DefaultOptions())

	for name := range unit0 {
		if unit1[name] != unit0[name] {
			t.Errorf("proc %s: unit fingerprint changed under reordering", name)
		}
		if env1[name] != env0[name] {
			t.Errorf("proc %s: env fingerprint changed under reordering", name)
		}
	}
}

// Whitespace and comment edits are invisible: the canonical rendering
// hashes the parsed form, not the source text.
func TestFingerprintWhitespaceInvariance(t *testing.T) {
	unit0, env0 := fpsFor(t, fpSrc, DefaultOptions())
	noisy := strings.Replace(fpSrc, "v(i) = v(i) * 0.5",
		"! a comment that changes nothing\n      v(i)   =   v(i)*0.5", 1)
	noisy = strings.ReplaceAll(noisy, "subroutine main()", "\n\nsubroutine main()")
	unit1, env1 := fpsFor(t, noisy, DefaultOptions())

	for name := range unit0 {
		if unit1[name] != unit0[name] {
			t.Errorf("proc %s: unit fingerprint changed under whitespace/comment edit", name)
		}
		if env1[name] != env0[name] {
			t.Errorf("proc %s: env fingerprint changed under whitespace/comment edit", name)
		}
	}
}

// Compilation options are part of every environment: an ablation must
// never reuse artifacts produced under different options.
func TestFingerprintOptionsSensitivity(t *testing.T) {
	_, env0 := fpsFor(t, fpSrc, DefaultOptions())
	_, env1 := fpsFor(t, fpSrc, DefaultOptions().WithDisabled(PassAvailability))
	for name := range env0 {
		if env1[name] == env0[name] {
			t.Errorf("proc %s: env fingerprint ignores the Disable list", name)
		}
	}
}

// A parameter override reaches every unit through the header.
func TestFingerprintParamSensitivity(t *testing.T) {
	_, env0 := fpsFor(t, fpSrc, DefaultOptions())
	_, env1 := fpsFor(t, strings.Replace(fpSrc, "param N = 32", "param N = 48", 1), DefaultOptions())
	for name := range env0 {
		if env1[name] == env0[name] {
			t.Errorf("proc %s: env fingerprint ignores a parameter change", name)
		}
	}
}

// splitSource must decompose a clean modular program into a header and
// per-subroutine chunks whose concatenation is token-equivalent to the
// whole source.
func TestSplitSourceRoundTrip(t *testing.T) {
	header, chunks := splitSource(fpSrc)
	if len(chunks) != 3 {
		t.Fatalf("want 3 chunks, got %d", len(chunks))
	}
	if !strings.Contains(header, "program fp") || strings.Contains(header, "subroutine") {
		t.Fatalf("bad header: %q", header)
	}
	for i, c := range chunks {
		if !strings.HasPrefix(strings.TrimSpace(c), "subroutine") || !strings.HasSuffix(strings.TrimSpace(c), "end") {
			t.Fatalf("chunk %d not subroutine..end: %q", i, c)
		}
	}
	whole, err := parser.Parse(fpSrc)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := parser.Parse(header + strings.Join(chunks, "\n"))
	if err != nil {
		t.Fatalf("header+chunks reparse: %v", err)
	}
	if len(joined.Procs) != len(whole.Procs) {
		t.Fatalf("reparse proc count %d != %d", len(joined.Procs), len(whole.Procs))
	}
}

// Significant text between subroutines, an unterminated subroutine, or a
// directive outside the header must refuse the split (nil chunks), while
// blank lines and plain comments between subroutines are fine.
func TestSplitSourceRejections(t *testing.T) {
	if _, chunks := splitSource(strings.Replace(fpSrc, "subroutine smooth", "x = 1\nsubroutine smooth", 1)); chunks != nil {
		t.Fatal("stray statement between subroutines not rejected")
	}
	trimmed := strings.TrimRight(fpSrc, "\n")
	if _, chunks := splitSource(trimmed[:len(trimmed)-len("end")]); chunks != nil {
		t.Fatal("unterminated final subroutine not rejected")
	}
	if _, chunks := splitSource(strings.Replace(fpSrc, "subroutine smooth", "!hpf$ independent\nsubroutine smooth", 1)); chunks != nil {
		t.Fatal("directive between subroutines not rejected")
	}
	if _, chunks := splitSource(strings.Replace(fpSrc, "subroutine smooth", "! a comment\n\nsubroutine smooth", 1)); len(chunks) != 3 {
		t.Fatalf("comment between subroutines should split, got %d chunks", len(chunks))
	}
}

// The rawunit shortcut must agree with the canonical rendering path:
// identical unit and env fingerprints whether the store is absent, cold,
// or primed.
func TestFingerprintRawTierAgreesWithCanonical(t *testing.T) {
	canonUnit, canonEnv := fpsFor(t, fpSrc, DefaultOptions())

	check := func(tag string, store *cache.ArtifactStore) {
		prog, err := parser.Parse(fpSrc)
		if err != nil {
			t.Fatal(err)
		}
		bind, err := hpf.Bind(prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := cp.NewContextNoDeps(prog, bind)
		if err != nil {
			t.Fatal(err)
		}
		fps := fingerprintUnits(ctx, DefaultOptions(), fpSrc, store)
		for _, p := range prog.Procs {
			if fps.Unit[p] != canonUnit[p.Name] {
				t.Fatalf("%s: unit fingerprint of %s diverges from canonical", tag, p.Name)
			}
			if fps.Env[p] != canonEnv[p.Name] {
				t.Fatalf("%s: env fingerprint of %s diverges from canonical", tag, p.Name)
			}
		}
	}
	store := cache.NewArtifactStore(0)
	check("cold store", store)
	check("primed store", store)
	check("nil store", nil)
}
