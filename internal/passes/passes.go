// Package passes structures dhpf's compilation as an explicit pass
// pipeline: each stage of the paper — parsing, directive binding,
// dependence analysis, CP selection (§2), NEW propagation (§4.1),
// LOCALIZE (§4.2), selective loop distribution (§5), interprocedural CP
// selection (§6), communication planning, data-availability elimination
// (§7), write-back redundancy elimination, reduction recognition and
// SPMD lowering — is an ordered Pass over a shared CompileContext, with
// per-pass instrumentation (wall time, communication volume) and
// inter-pass invariant checks.  Ablations drop a pass by name instead of
// threading option booleans through three packages.
package passes

import (
	"context"
	"fmt"
	"time"

	"dhpf/internal/analysis"
	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
	"dhpf/internal/parser"
	"dhpf/internal/verify"
)

// Canonical pass names, in pipeline order.
const (
	PassParse        = "parse"
	PassBind         = "bind"
	PassDependence   = "dependence"
	PassCPSelect     = "cpselect"
	PassNewProp      = "newprop"
	PassLocalize     = "localize"
	PassInterproc    = "interproc"
	PassLoopDist     = "loopdist"
	PassReductions   = "reductions"
	PassCommPlan     = "commplan"
	PassAvailability = "availability"
	PassWritebackRed = "wbelim"
	PassLower        = "lower"
	PassVerify       = "verify"
	PassAnalyze      = "analyze"
)

// Execution backends an Options.Backend may name.  The pipeline's
// analyses (partitioning, communication planning) are backend-neutral;
// the backend decides how the plans execute — as message traffic on the
// virtual message-passing machine, or as barrier phases and direct
// memory pulls on a shared-memory goroutine team (see internal/shm).
const (
	// BackendMP is the message-passing machine (mpsim); the default.
	BackendMP = "mp"
	// BackendShm is the shared-memory SPMD team: one goroutine per rank
	// of the grid, communication events become barrier/pull obligations.
	BackendShm = "shm"
	// BackendHybrid splits the grid hierarchically: ranks across the
	// first grid dimension exchange messages, threads within a rank
	// share memory.
	BackendHybrid = "hybrid"
)

// ParseBackend canonicalizes a backend name ("" = BackendMP).
func ParseBackend(s string) (string, error) {
	switch s {
	case "", BackendMP:
		return BackendMP, nil
	case BackendShm, BackendHybrid:
		return s, nil
	}
	return "", fmt.Errorf("unknown backend %q (want %s, %s or %s)", s, BackendMP, BackendShm, BackendHybrid)
}

// canonicalBackend is ParseBackend for contexts past validation: an
// unknown name (already rejected by BuildPipeline) passes through
// verbatim rather than erroring twice.
func canonicalBackend(s string) string {
	if b, err := ParseBackend(s); err == nil {
		return b
	}
	return s
}

// Options bundles the optimization switches of the whole pipeline.
type Options struct {
	CP   cp.Options
	Comm comm.Options
	// PipelineGrain is the strip width of coarse-grain pipelining in
	// wavefront loops (iterations of the strip-mined inner loop per
	// message).  The paper notes dHPF applies one global granularity.
	PipelineGrain int

	// Backend selects the execution substrate the compiled program
	// targets: BackendMP (or "") for the message-passing machine,
	// BackendShm for the shared-memory goroutine team, BackendHybrid
	// for message ranks across the first grid dimension × shared-memory
	// threads within a rank.  Part of the fingerprint: two compilations
	// differing only in backend are distinct cache entries.
	Backend string

	// Engine names the execution engine programs compiled with these
	// options run under by default ("" or "compiled" for the closure
	// engine, "interp" for the reference interpreter, "codegen" for
	// native kernels with closure fallback).  Engine choice is an
	// execution-time concern: it never changes compilation decisions or
	// results (all engines are byte-identical by construction), so it is
	// deliberately EXCLUDED from Fingerprint — the compile cache would
	// otherwise duplicate entries for identical programs.
	Engine string

	// Disable lists optimization passes excluded from the pipeline by
	// name (PassNewProp, PassLocalize, PassInterproc, PassLoopDist,
	// PassAvailability, PassWritebackRed, PassVerify, PassAnalyze).  Core passes
	// cannot be disabled; unknown names are reported by BuildPipeline.
	Disable []string

	// Instrument turns on the per-pass communication-volume probe: after
	// each pass the would-be fully-vectorized transfer plan is computed
	// and recorded in the pass's Stat.  Costs roughly one communication
	// analysis per pass, so it is off by default (wall times and decision
	// summaries are always collected).
	Instrument bool
}

// DefaultOptions enables every optimization with the paper's defaults.
func DefaultOptions() Options {
	return Options{
		CP:            cp.DefaultOptions(),
		Comm:          comm.DefaultOptions(),
		PipelineGrain: 8,
	}
}

// Disabled reports whether a pass name is in the Disable list.
func (o *Options) Disabled(name string) bool {
	for _, d := range o.Disable {
		if d == name {
			return true
		}
	}
	return false
}

// WithDisabled returns a copy of the options with the named passes added
// to the Disable list — the one-liner ablation switch.
func (o Options) WithDisabled(names ...string) Options {
	o.Disable = append(append([]string{}, o.Disable...), names...)
	return o
}

// CompileContext is the shared state the passes grow: the front half
// fills IR/Bind/Ctx, the selection passes fill Sel, the back half fills
// Comm and Reductions.  Stats accumulates one record per executed pass.
type CompileContext struct {
	// Source is the mini-HPF text to compile; ignored when IR is pre-set
	// (the caller already parsed).
	Source string
	Params map[string]int
	Opt    Options

	IR         *ir.Program
	Bind       *hpf.Binding
	Ctx        *cp.Context
	Grid       *hpf.Grid
	Sel        *cp.Selection
	Comm       map[string]*comm.Analysis
	Reductions map[string][]ReductionPlan
	// Verify holds the translation-validation report of the verify pass
	// (nil when the pass is disabled).
	Verify *verify.Report
	// Analysis holds the static-analysis result of the analyze pass —
	// symbolic loop summaries plus dataflow diagnostics (nil when the
	// pass is disabled).
	Analysis *analysis.Result

	Stats []Stat
}

// Pass is one named stage of the pipeline.
type Pass struct {
	Name string
	// Run does the work; Check verifies the inter-pass invariant the
	// pass establishes (nil when there is nothing structural to assert).
	Run   func(*CompileContext) error
	Check func(*CompileContext) error
	// Optional passes may be dropped via Options.Disable.
	Optional bool
	// Reads and Produces name the CompileContext artifacts the pass
	// consumes and defines — the edges of the artifact DAG the
	// incremental scheduler (RunIncremental) reasons over.  A pass whose
	// Produces are all reusable from the artifact store for every
	// procedure is skipped on a warm recompile; ArtifactKinds lists which
	// artifacts are cached per procedure.
	Reads    []string
	Produces []string
	// PerProc marks passes whose work decomposes per procedure, so the
	// incremental scheduler can recompute only dirty procedures and run
	// them in parallel.
	PerProc bool
}

// Artifact names used in Pass.Reads/Produces.  The first block lives on
// the CompileContext; the ArtifactKinds subset is additionally cached per
// (procedure, environment-fingerprint) in a cache.ArtifactStore.
const (
	ArtIR         = "ir"         // parsed program
	ArtBind       = "bind"       // resolved directives and parameters
	ArtDeps       = "deps"       // per-procedure dependence graphs
	ArtSel        = "sel"        // CP selection
	ArtReductions = "reductions" // recognized reduction plans
	ArtComm       = "comm"       // per-procedure communication plans
	ArtVerify     = "verify"     // per-procedure verification fragments
	ArtAnalysis   = "analysis"   // per-procedure static-analysis fragments
)

// ArtifactKinds lists the per-procedure artifacts the incremental
// scheduler memoizes in the store, in pipeline order.
func ArtifactKinds() []string {
	return []string{ArtDeps, ArtSel, ArtComm, ArtVerify, ArtAnalysis}
}

// BuildPipeline returns the ordered pass list for the options: the full
// paper pipeline minus the disabled optional passes.  Unknown or
// non-optional names in Disable are errors — a misspelled ablation must
// not silently run the full pipeline.
func BuildPipeline(opt Options) ([]Pass, error) {
	if _, err := ParseBackend(opt.Backend); err != nil {
		return nil, fmt.Errorf("passes: %w", err)
	}
	all := allPasses()
	known := map[string]bool{}
	optional := map[string]bool{}
	for _, p := range all {
		known[p.Name] = true
		optional[p.Name] = p.Optional
	}
	for _, d := range opt.Disable {
		if !known[d] {
			return nil, fmt.Errorf("passes: unknown pass %q in Disable (known: %s)", d, PassNames())
		}
		if !optional[d] {
			return nil, fmt.Errorf("passes: pass %q is not optional and cannot be disabled", d)
		}
	}
	var out []Pass
	for _, p := range all {
		if p.Optional && opt.Disabled(p.Name) {
			continue
		}
		out = append(out, p)
	}
	return out, nil
}

// PassNames lists every pass of the full pipeline, in order.
func PassNames() []string {
	var out []string
	for _, p := range allPasses() {
		out = append(out, p.Name)
	}
	return out
}

// OptionalPassNames lists the passes Options.Disable accepts.
func OptionalPassNames() []string {
	var out []string
	for _, p := range allPasses() {
		if p.Optional {
			out = append(out, p.Name)
		}
	}
	return out
}

// Run builds the pipeline for cc.Opt and executes it: each pass is
// timed, its decision summary and (with Opt.Instrument) communication
// volume recorded in cc.Stats, and its invariant check run before the
// next pass starts.
func Run(cc *CompileContext) error {
	return RunCtx(context.Background(), cc)
}

// RunCtx is Run with cancellation: the context is checked at every pass
// boundary, so a cancelled or timed-out compile aborts before the next
// pass starts and returns ctx.Err() (wrapped with the pass it stopped
// ahead of).  Passes themselves run to completion — the boundaries are
// the pipeline's consistency points, so an aborted context can never
// leave cc half-mutated by a pass.
func RunCtx(ctx context.Context, cc *CompileContext) error {
	pipeline, err := BuildPipeline(cc.Opt)
	if err != nil {
		return err
	}
	var prev probe
	prevValid := false
	for _, p := range pipeline {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("passes: aborted before %s: %w", p.Name, err)
		}
		noteBase := 0
		if cc.Sel != nil {
			noteBase = cc.Sel.NoteCount()
		}
		start := time.Now() //vetdet:ok pass wall times are -explain telemetry, never fingerprinted
		if err := p.Run(cc); err != nil {
			return fmt.Errorf("pass %s: %w", p.Name, err)
		}
		st := Stat{Name: p.Name, Wall: time.Since(start)} //vetdet:ok telemetry
		if cc.Sel != nil {
			st.Notes = cc.Sel.NotesSince(noteBase)
		}
		st.Summary = summarize(p.Name, cc)
		if st.Summary == "" {
			st.Summary = fmt.Sprintf("%d decisions", len(st.Notes))
		}
		if cc.Opt.Instrument {
			cur, ok := measureComm(cc)
			if ok {
				st.Msgs, st.Bytes = cur.msgs, cur.bytes
				st.Measured = true
				if prevValid {
					st.DeltaBytes = cur.bytes - prev.bytes
					st.HasDelta = true
				}
				prev, prevValid = cur, true
			}
		}
		cc.Stats = append(cc.Stats, st)
		if p.Check != nil {
			if err := p.Check(cc); err != nil {
				return fmt.Errorf("pass %s: invariant violated: %w", p.Name, err)
			}
		}
	}
	return nil
}

// allPasses is the full pipeline in the order the paper's phases run,
// with each pass's artifact reads/produces declared (the DAG the
// incremental scheduler memoizes over).
func allPasses() []Pass {
	return []Pass{
		{Name: PassParse, Run: runParse, Check: checkParse,
			Produces: []string{ArtIR}},
		{Name: PassBind, Run: runBind, Check: checkBind,
			Reads: []string{ArtIR}, Produces: []string{ArtBind}},
		{Name: PassDependence, Run: runDependence, Check: checkDependence,
			Reads: []string{ArtIR, ArtBind}, Produces: []string{ArtDeps}, PerProc: true},
		{Name: PassCPSelect, Run: runCPSelect, Check: checkCPSelect,
			Reads: []string{ArtIR, ArtBind, ArtDeps}, Produces: []string{ArtSel}, PerProc: true},
		{Name: PassNewProp, Run: runNewProp, Optional: true,
			Reads: []string{ArtIR, ArtDeps}, Produces: []string{ArtSel}, PerProc: true},
		{Name: PassLocalize, Run: runLocalize, Optional: true,
			Reads: []string{ArtIR, ArtDeps}, Produces: []string{ArtSel}, PerProc: true},
		{Name: PassInterproc, Run: runInterproc, Check: checkInterproc, Optional: true,
			Reads: []string{ArtIR, ArtDeps, ArtSel}, Produces: []string{ArtSel}},
		{Name: PassLoopDist, Run: runLoopDist, Check: checkLoopDist, Optional: true,
			Reads: []string{ArtIR, ArtDeps, ArtSel}, Produces: []string{ArtIR}, PerProc: true},
		{Name: PassReductions, Run: runReductions, Check: checkReductions,
			Reads: []string{ArtIR, ArtSel}, Produces: []string{ArtReductions}, PerProc: true},
		{Name: PassCommPlan, Run: runCommPlan, Check: checkCommPlan,
			Reads: []string{ArtIR, ArtBind, ArtSel}, Produces: []string{ArtComm}, PerProc: true},
		{Name: PassAvailability, Run: runAvailability, Check: checkElimReasons, Optional: true,
			Reads: []string{ArtComm}, Produces: []string{ArtComm}, PerProc: true},
		{Name: PassWritebackRed, Run: runWritebackRed, Check: checkElimReasons, Optional: true,
			Reads: []string{ArtComm}, Produces: []string{ArtComm}, PerProc: true},
		{Name: PassLower, Run: runLower, Check: checkLower,
			Reads: []string{ArtSel, ArtComm, ArtReductions}},
		{Name: PassVerify, Run: runVerify, Check: checkVerify, Optional: true,
			Reads: []string{ArtIR, ArtBind, ArtSel, ArtComm, ArtReductions}, Produces: []string{ArtVerify}, PerProc: true},
		{Name: PassAnalyze, Run: runAnalyze, Check: checkAnalyze, Optional: true,
			Reads: []string{ArtIR, ArtBind, ArtSel, ArtComm, ArtReductions}, Produces: []string{ArtAnalysis}, PerProc: true},
	}
}

// --- pass bodies -------------------------------------------------------------

func runParse(cc *CompileContext) error {
	if cc.IR != nil {
		return nil // caller supplied a parsed program
	}
	prog, err := parser.Parse(cc.Source)
	if err != nil {
		return err
	}
	cc.IR = prog
	return nil
}

func runBind(cc *CompileContext) error {
	bind, err := hpf.Bind(cc.IR, cc.Params)
	if err != nil {
		return err
	}
	cc.Bind = bind
	return nil
}

func runDependence(cc *CompileContext) error {
	ctx, err := cp.NewContext(cc.IR, cc.Bind)
	if err != nil {
		return err
	}
	grid, err := ctx.Grid()
	if err != nil {
		return err
	}
	cc.Ctx = ctx
	cc.Grid = grid
	return nil
}

func runCPSelect(cc *CompileContext) error {
	sel, err := cp.SelectBase(cc.Ctx, cc.Opt.CP)
	if err != nil {
		return err
	}
	cc.Sel = sel
	return nil
}

func runNewProp(cc *CompileContext) error {
	return cp.PropagateNewArrays(cc.Ctx, cc.Sel, cc.Opt.CP)
}

func runLocalize(cc *CompileContext) error {
	if !cc.Opt.CP.Localize {
		return nil
	}
	return cp.PropagateLocalize(cc.Ctx, cc.Sel, cc.Opt.CP)
}

func runInterproc(cc *CompileContext) error {
	return cp.SelectInterproc(cc.Ctx, cc.Sel, cc.Opt.CP)
}

func runLoopDist(cc *CompileContext) error {
	if !cc.Opt.CP.LoopDist {
		return nil
	}
	for _, proc := range cc.IR.Procs {
		cp.DistributeLoops(cc.Ctx, proc, cc.Sel)
	}
	return nil
}

func runReductions(cc *CompileContext) error {
	cc.Reductions = map[string][]ReductionPlan{}
	for _, proc := range cc.IR.Procs {
		cc.Reductions[proc.Name] = planReductions(cc.Ctx, proc, cc.Sel)
	}
	return nil
}

func runCommPlan(cc *CompileContext) error {
	cc.Comm = map[string]*comm.Analysis{}
	for _, proc := range cc.IR.Procs {
		cc.Comm[proc.Name] = comm.BuildEvents(cc.Ctx, proc, cc.Sel)
	}
	return nil
}

func runAvailability(cc *CompileContext) error {
	if !cc.Opt.Comm.Availability {
		return nil
	}
	for _, proc := range cc.IR.Procs {
		comm.ApplyAvailability(cc.Ctx, cc.Sel, cc.Comm[proc.Name])
	}
	return nil
}

func runWritebackRed(cc *CompileContext) error {
	if !cc.Opt.Comm.RedundantWriteback {
		return nil
	}
	for _, proc := range cc.IR.Procs {
		comm.ApplyWritebackElim(cc.Ctx, cc.Sel, cc.Comm[proc.Name])
	}
	return nil
}

// runLower finalizes the pipeline.  The executable/node-program forms
// are generated on demand by the spmd package from the analyses gathered
// here, so lowering's job at compile time is to validate that everything
// code generation will need is present and well-formed — its Check does
// the work.
func runLower(cc *CompileContext) error {
	if cc.Opt.PipelineGrain < 1 {
		return fmt.Errorf("PipelineGrain must be >= 1, got %d", cc.Opt.PipelineGrain)
	}
	return nil
}

// --- invariant checks --------------------------------------------------------

func checkParse(cc *CompileContext) error {
	if cc.IR == nil {
		return fmt.Errorf("no IR produced")
	}
	if len(cc.IR.Procs) == 0 {
		return fmt.Errorf("program has no procedures")
	}
	return nil
}

func checkBind(cc *CompileContext) error {
	if cc.Bind == nil {
		return fmt.Errorf("no binding produced")
	}
	return nil
}

func checkDependence(cc *CompileContext) error {
	if cc.Ctx == nil || cc.Grid == nil {
		return fmt.Errorf("no CP context or grid produced")
	}
	for _, proc := range cc.IR.Procs {
		if _, ok := cc.Ctx.Deps[proc]; !ok {
			return fmt.Errorf("no dependence info for proc %s", proc.Name)
		}
	}
	return nil
}

// checkCPSelect: every assignment has an explicit CP after selection.
func checkCPSelect(cc *CompileContext) error {
	for _, proc := range cc.IR.Procs {
		for _, a := range ir.Assignments(proc.Body) {
			if _, ok := cc.Sel.CPs[a.Assign.ID]; !ok {
				return fmt.Errorf("proc %s: stmt %d has no CP", proc.Name, a.Assign.ID)
			}
		}
	}
	return nil
}

// checkInterproc: every call statement has a CP and every procedure has
// an entry-CP record (possibly nil = non-uniform) after §6.
func checkInterproc(cc *CompileContext) error {
	for _, proc := range cc.IR.Procs {
		if _, ok := cc.Sel.Entry[proc.Name]; !ok {
			return fmt.Errorf("proc %s: no entry CP recorded", proc.Name)
		}
		var err error
		ir.Walk(proc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
			if call, ok := s.(*ir.CallStmt); ok {
				if _, has := cc.Sel.CPs[call.ID]; !has {
					err = fmt.Errorf("proc %s: call stmt %d has no CP", proc.Name, call.ID)
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// checkLoopDist: distribution reuses statement objects, so every CP
// recorded by ID must still refer to a statement present in some body.
func checkLoopDist(cc *CompileContext) error {
	live := map[int]bool{}
	for _, proc := range cc.IR.Procs {
		ir.Walk(proc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
			switch st := s.(type) {
			case *ir.Assign:
				live[st.ID] = true
			case *ir.CallStmt:
				live[st.ID] = true
			}
			return true
		})
	}
	for _, proc := range cc.IR.Procs {
		for _, a := range ir.Assignments(proc.Body) {
			if !live[a.Assign.ID] {
				return fmt.Errorf("proc %s: stmt %d lost by distribution", proc.Name, a.Assign.ID)
			}
		}
	}
	return nil
}

// checkReductions: every recognized reduction has a supported combine
// operator (unsupported ones must have been replicated instead).
func checkReductions(cc *CompileContext) error {
	for proc, plans := range cc.Reductions {
		for _, r := range plans {
			switch r.Op {
			case '+', '<', '>':
			default:
				return fmt.Errorf("proc %s: reduction on %s has unsupported op %q", proc, r.Var, r.Op)
			}
		}
	}
	return nil
}

// checkCommPlan: every event belongs to a statement still in its
// procedure's body and carries a well-formed placement depth.
func checkCommPlan(cc *CompileContext) error {
	for _, proc := range cc.IR.Procs {
		a := cc.Comm[proc.Name]
		if a == nil {
			return fmt.Errorf("proc %s: no communication analysis", proc.Name)
		}
		inBody := map[int]bool{}
		ir.Walk(proc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
			if st, ok := s.(*ir.Assign); ok {
				inBody[st.ID] = true
			}
			return true
		})
		for _, e := range a.Events {
			if !inBody[e.Stmt.ID] {
				return fmt.Errorf("proc %s: event on stmt %d not in body", proc.Name, e.Stmt.ID)
			}
			if e.Depth < 0 || e.Depth > len(e.Nest) {
				return fmt.Errorf("proc %s: event on stmt %d has depth %d outside nest of %d",
					proc.Name, e.Stmt.ID, e.Depth, len(e.Nest))
			}
		}
	}
	return nil
}

// checkElimReasons: an eliminated event must say why (the report and the
// availability logic both rely on it).
func checkElimReasons(cc *CompileContext) error {
	for _, proc := range cc.IR.Procs {
		for _, e := range cc.Comm[proc.Name].Events {
			if e.Eliminated && e.Reason == "" {
				return fmt.Errorf("proc %s: eliminated event on stmt %d has no reason", proc.Name, e.Stmt.ID)
			}
		}
	}
	return nil
}

// checkLower: the final artifact set code generation needs.
func checkLower(cc *CompileContext) error {
	if cc.Grid == nil || cc.Sel == nil || cc.Comm == nil || cc.Reductions == nil {
		return fmt.Errorf("pipeline incomplete: grid/selection/comm/reductions missing")
	}
	return nil
}

// summarize renders a one-line decision summary for a pass from the
// context state after it ran.
func summarize(name string, cc *CompileContext) string {
	switch name {
	case PassParse:
		stmts := 0
		for _, p := range cc.IR.Procs {
			ir.Walk(p.Body, func(ir.Stmt, []*ir.Loop) bool { stmts++; return true })
		}
		return fmt.Sprintf("%d procs, %d stmts", len(cc.IR.Procs), stmts)
	case PassBind:
		return fmt.Sprintf("%d params", len(cc.Bind.Params))
	case PassDependence:
		deps := 0
		for _, d := range cc.Ctx.Deps {
			deps += len(d)
		}
		return fmt.Sprintf("%d deps, grid %s%v", deps, cc.Grid.Name, cc.Grid.Shape)
	case PassCPSelect:
		marked := 0
		for _, pairs := range cc.Sel.Marked {
			marked += len(pairs)
		}
		return fmt.Sprintf("%d stmt CPs, %d pairs marked", len(cc.Sel.CPs), marked)
	case PassNewProp, PassLocalize, PassInterproc, PassLoopDist:
		return "" // the per-pass Notes carry the decisions
	case PassReductions:
		n := 0
		for _, plans := range cc.Reductions {
			n += len(plans)
		}
		return fmt.Sprintf("%d reductions", n)
	case PassCommPlan:
		n := 0
		for _, a := range cc.Comm {
			n += len(a.Events)
		}
		return fmt.Sprintf("%d events", n)
	case PassAvailability, PassWritebackRed:
		return fmt.Sprintf("%d events eliminated", eliminatedCount(cc))
	case PassLower:
		return "SPMD artifacts validated"
	case PassVerify:
		if cc.Verify != nil {
			return cc.Verify.Summary()
		}
	case PassAnalyze:
		if cc.Analysis != nil {
			return cc.Analysis.Summary()
		}
	}
	return ""
}

func eliminatedCount(cc *CompileContext) int {
	n := 0
	for _, a := range cc.Comm {
		for _, e := range a.Events {
			if e.Eliminated {
				n++
			}
		}
	}
	return n
}
