package passes

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"dhpf/internal/cache"
	"dhpf/internal/cp"
	"dhpf/internal/hpf"
	"dhpf/internal/ir"
)

// artifactVersion is folded into every artifact fingerprint and bumped
// whenever the frozen artifact encodings (artifact.go) or the fingerprint
// derivation below change, so artifacts written by an older build can
// never thaw into a newer one.
const artifactVersion = "dhpf-artifact-v1"

// unitFingerprints is the per-compilation fingerprint table the
// incremental scheduler keys the artifact store with.
type unitFingerprints struct {
	// Header hashes the program-level context shared by every unit:
	// program name, resolved parameters, directives, and the options
	// fingerprint.
	Header string
	// Unit maps each procedure to the hash of its canonical rendering —
	// the content hash that is stable under whitespace/comment edits and
	// under edits to *other* procedures.
	Unit map[*ir.Procedure]string
	// Env maps each procedure to its environment fingerprint: everything
	// that can influence the procedure's analysis results — the header,
	// its own unit hash, its formal-layout overlay, and the unit hashes
	// and overlays of its transitive callees (whose entry CPs feed the §6
	// interprocedural selection at its call sites).  An artifact keyed by
	// Env is reusable exactly when Env is unchanged.
	Env map[*ir.Procedure]string
}

// splitUnits best-effort splits a source text into one raw chunk per
// subroutine, in source order (each chunk spans its "subroutine" line
// through its terminating "end" line).  It returns nil when the text
// doesn't decompose cleanly; callers must treat nil — or a chunk count
// that disagrees with the parsed procedure list — as "no raw chunks" and
// fall back to canonical rendering.
func splitUnits(src string) []string {
	_, chunks := splitSource(src)
	return chunks
}

// splitSource splits a source text into the header (everything before
// the first subroutine — program name, params, directives) and one raw
// chunk per subroutine.  Chunks are only returned when the split is
// token-equivalent to the whole text: every line outside the header and
// outside a chunk must be blank or a plain (non-directive) comment,
// which the lexer discards, so parsing header+chunks sees exactly the
// token stream of the full source.  Returns (src, nil) otherwise.
func splitSource(src string) (string, []string) {
	var chunks []string
	header := src
	start := -1
	for pos := 0; pos < len(src); {
		next := len(src)
		line := src[pos:]
		if nl := strings.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
			next = pos + nl + 1
		}
		t := strings.TrimSpace(line)
		if start < 0 {
			switch {
			case strings.HasPrefix(t, "subroutine"):
				if chunks == nil {
					header = src[:pos]
				}
				start = pos
			case chunks == nil:
				// still in the header; anything goes
			case t == "" || (strings.HasPrefix(t, "!") && !strings.EqualFold(firstN(t, 5), "!hpf$")):
				// blank or comment between subroutines: lexer-invisible
			default:
				return src, nil // significant text outside any subroutine
			}
		} else if t == "end" {
			chunks = append(chunks, src[start:next])
			start = -1
		}
		pos = next
	}
	if start >= 0 {
		return src, nil // unterminated subroutine; parser will reject it anyway
	}
	return header, chunks
}

func firstN(s string, n int) string {
	if len(s) < n {
		return s
	}
	return s[:n]
}

// fingerprintUnits computes the fingerprint table for a parsed, bound
// program whose formal-layout overlays are already propagated (the ctx
// from cp.NewContextNoDeps).  Call graphs with cycles get conservative
// fingerprints for the procedures on the cycle path (the selection passes
// reject recursion later with the same error as a cold compile).
//
// src and store enable the raw-text shortcut: a procedure whose raw
// source chunk is byte-identical to one hashed before parses to the same
// AST and therefore has the same canonical unit hash, so the expensive
// canonical re-rendering is skipped and the unit hash is read from the
// store's rawunit tier instead.  A cosmetic (whitespace/comment) edit
// misses the raw tier and falls through to the canonical path, which
// still yields an unchanged unit hash.  Pass src == "" or store == nil
// to disable the shortcut.
func fingerprintUnits(ctx *cp.Context, opt Options, src string, store *cache.ArtifactStore) *unitFingerprints {
	fps := &unitFingerprints{
		Unit: make(map[*ir.Procedure]string, len(ctx.Prog.Procs)),
		Env:  make(map[*ir.Procedure]string, len(ctx.Prog.Procs)),
	}

	h := sha256.New()
	fmt.Fprintf(h, "%s\x00header\x00", artifactVersion)
	io.WriteString(h, ir.HeaderText(ctx.Prog))
	// Request-supplied parameter overrides resolve through the binding;
	// hash the final values so an override dirties everything it touches.
	names := make([]string, 0, len(ctx.Bind.Params))
	for n := range ctx.Bind.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "%d:%s=%d\x00", len(n), n, ctx.Bind.Params[n])
	}
	writeOptions(h, opt)
	fps.Header = hex.EncodeToString(h.Sum(nil))

	// The unit hashes dominate fingerprinting cost (one canonical
	// rendering plus a SHA-256 per procedure) and are independent, so they
	// run on the worker pool; each goroutine writes only its own slot.
	// The rawunit tier short-circuits the rendering for procedures whose
	// raw source chunk was seen before.
	var chunks []string
	if src != "" && store != nil {
		if c := splitUnits(src); len(c) == len(ctx.Prog.Procs) {
			chunks = c
		}
	}
	unitHashes := make([]string, len(ctx.Prog.Procs))
	forEach(len(ctx.Prog.Procs), 0, func(i int) error {
		var rawKey string
		if chunks != nil {
			rh := sha256.Sum256([]byte(artifactVersion + "\x00rawunit\x00" + chunks[i]))
			rawKey = artifactKey(artifactRawUnit, hex.EncodeToString(rh[:]))
			if v, ok := store.Get(rawKey); ok {
				unitHashes[i] = v.(string)
				return nil
			}
		}
		uh := sha256.New()
		fmt.Fprintf(uh, "%s\x00unit\x00", artifactVersion)
		io.WriteString(uh, ir.ProcText(ctx.Prog.Procs[i]))
		unitHashes[i] = hex.EncodeToString(uh.Sum(nil))
		if rawKey != "" {
			store.Put(rawKey, unitHashes[i], int64(len(rawKey)+len(unitHashes[i])))
		}
		return nil
	})
	for i, proc := range ctx.Prog.Procs {
		fps.Unit[proc] = unitHashes[i]
	}

	// Each procedure's own env contribution (unit hash + overlay
	// rendering) is rendered once and reused from every caller's
	// environment hash — the env loop is O(procs × transitive callees).
	contrib := make(map[string]string, len(ctx.Prog.Procs))
	for _, proc := range ctx.Prog.Procs {
		contrib[proc.Name] = unitEnvContribution(ctx, fps, proc)
	}

	// Direct-call lists are pure functions of the body, so the calls tier
	// memoizes them per unit hash and unedited procedures skip the walk.
	direct := make(map[string][]string, len(ctx.Prog.Procs))
	for i, proc := range ctx.Prog.Procs {
		if store != nil {
			key := artifactKey(artifactCalls, unitHashes[i])
			if v, ok := store.Get(key); ok {
				direct[proc.Name] = v.([]string)
				continue
			}
			calls := directCalls(proc)
			direct[proc.Name] = calls
			sz := int64(len(key))
			for _, c := range calls {
				sz += int64(len(c))
			}
			store.Put(key, calls, sz)
			continue
		}
		direct[proc.Name] = directCalls(proc)
	}

	closure := calleeClosure(ctx.Prog, direct)
	for _, proc := range ctx.Prog.Procs {
		eh := sha256.New()
		fmt.Fprintf(eh, "%s\x00env\x00%s\x00", artifactVersion, fps.Header)
		io.WriteString(eh, contrib[proc.Name])
		// Transitive callees in sorted name order: their bodies and
		// overlays determine the entry CPs translated to this
		// procedure's call sites.
		callees := closure[proc.Name]
		sorted := make([]string, 0, len(callees))
		for name := range callees {
			sorted = append(sorted, name)
		}
		sort.Strings(sorted)
		for _, name := range sorted {
			fmt.Fprintf(eh, "callee:%d:%s\x00", len(name), name)
			io.WriteString(eh, contrib[name])
		}
		fps.Env[proc] = hex.EncodeToString(eh.Sum(nil))
	}
	return fps
}

// unitEnvContribution renders one procedure's own contribution to an
// environment fingerprint: its unit hash plus its formal-layout overlay
// (layouts reach formals from call sites, so a caller-side change that
// rebinds a formal must dirty the callee).  Unknown callees contribute
// the empty string, matching a missing procedure.
func unitEnvContribution(ctx *cp.Context, fps *unitFingerprints, proc *ir.Procedure) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "unit:%s\x00", fps.Unit[proc])
	ov := ctx.Overlay[proc]
	formals := make([]string, 0, len(ov))
	for name := range ov {
		formals = append(formals, name)
	}
	sort.Strings(formals)
	for _, name := range formals {
		fmt.Fprintf(&sb, "overlay:%d:%s=%s\x00", len(name), name, layoutDesc(ov[name]))
	}
	return sb.String()
}

// layoutDesc renders a layout's full semantic content (Layout.String
// omits bounds and alignment offsets, which ownership depends on).
// Built with strconv appends — it runs once per (procedure, formal) on
// every compile, warm or cold.
func layoutDesc(l *hpf.Layout) string {
	if l == nil {
		return "<replicated>"
	}
	var sb strings.Builder
	sb.WriteString(l.Name)
	sb.WriteString("|grid=")
	sb.WriteString(l.Grid.Name)
	fmt.Fprintf(&sb, "%v|", l.Grid.Shape)
	for _, d := range l.Dims {
		fmt.Fprintf(&sb, "(%v,g%d,%d:%d,bs%d,off%d)", d.Kind, d.GridDim, d.Lo, d.Hi, d.BlockSz, d.TplOff)
	}
	return sb.String()
}

// directCalls returns the distinct callee names of a procedure in first-
// call order.  It is a pure function of the procedure body, so its result
// is cached per unit hash (the calls tier) and the body walk skipped for
// unedited procedures.
func directCalls(proc *ir.Procedure) []string {
	var out []string
	seen := map[string]bool{}
	ir.Walk(proc.Body, func(s ir.Stmt, _ []*ir.Loop) bool {
		if call, ok := s.(*ir.CallStmt); ok && !seen[call.Callee] {
			seen[call.Callee] = true
			out = append(out, call.Callee)
		}
		return true
	})
	return out
}

// calleeClosure maps each procedure name to the set of procedure names
// transitively reachable through its call sites.  Cycles (rejected later
// by the selection passes) terminate via the in-progress guard and yield
// a conservative partial closure.
func calleeClosure(prog *ir.Program, direct map[string][]string) map[string]map[string]bool {
	closure := make(map[string]map[string]bool, len(prog.Procs))
	var visit func(name string, path map[string]bool) map[string]bool
	visit = func(name string, path map[string]bool) map[string]bool {
		if c, ok := closure[name]; ok {
			return c
		}
		if path[name] {
			return nil // recursion: rejected downstream; stop expanding
		}
		path[name] = true
		out := map[string]bool{}
		for _, callee := range direct[name] {
			out[callee] = true
			for n := range visit(callee, path) {
				out[n] = true
			}
		}
		delete(path, name)
		closure[name] = out
		return out
	}
	for _, proc := range prog.Procs {
		visit(proc.Name, map[string]bool{})
	}
	return closure
}

// artifactKey composes the store key for one (procedure, pass-kind)
// artifact: kind tag plus the procedure's environment fingerprint.
func artifactKey(kind, envFP string) string {
	return fmt.Sprintf("%s\x00%s", kind, envFP)
}
