package passes

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dhpf/internal/cache"
	"dhpf/internal/ir"
)

// incrSrc is a modular multi-unit program shaped like the NAS solvers:
// a communicating stencil phase, a wavefront sweep, and a tiny add phase
// (the canonical edit target), called from main's time loop.  (The full
// modular SP source lives in internal/nas, which this package cannot
// import without a cycle; the root-level differential tests cover it.)
func incrSrc(n int) string {
	return fmt.Sprintf(`
program incr
param N = %d
!hpf$ processors procs(2, 2)
!hpf$ template tm(N, N, N)
!hpf$ align u with tm(d0, d1, d2)
!hpf$ align r with tm(d0, d1, d2)
!hpf$ align rho with tm(d0, d1, d2)
!hpf$ distribute tm(*, BLOCK, BLOCK) onto procs

subroutine compute(u, r, rho)
  real u(0:N-1, 0:N-1, 0:N-1)
  real r(0:N-1, 0:N-1, 0:N-1)
  real rho(0:N-1, 0:N-1, 0:N-1)
  !hpf$ independent, localize(rho)
  do onetrip = 1, 1
    do k = 0, N-1
      do j = 0, N-1
        do i = 0, N-1
          rho(i,j,k) = 1.0 / u(i,j,k)
        enddo
      enddo
    enddo
    do k = 1, N-2
      do j = 1, N-2
        do i = 1, N-2
          r(i,j,k) = 0.25*(rho(i,j+1,k) + rho(i,j-1,k) + rho(i,j,k+1) + rho(i,j,k-1))
        enddo
      enddo
    enddo
  enddo
end

subroutine sweep(u, r)
  real u(0:N-1, 0:N-1, 0:N-1)
  real r(0:N-1, 0:N-1, 0:N-1)
  do j = 1, N-2
    do k = 1, N-2
      do i = 1, N-2
        r(i,j+1,k) = r(i,j+1,k) - 0.4*r(i,j,k)/u(i,j,k)
      enddo
    enddo
  enddo
end

subroutine add(u, r)
  real u(0:N-1, 0:N-1, 0:N-1)
  real r(0:N-1, 0:N-1, 0:N-1)
  do k = 1, N-2
    do j = 1, N-2
      do i = 1, N-2
        u(i,j,k) = u(i,j,k) + 0.10000*r(i,j,k)
      enddo
    enddo
  enddo
end

subroutine main()
  real u(0:N-1, 0:N-1, 0:N-1)
  real r(0:N-1, 0:N-1, 0:N-1)
  real rho(0:N-1, 0:N-1, 0:N-1)
  do step = 1, 2
    call compute(u, r, rho)
    call sweep(u, r)
    call add(u, r)
  enddo
end
`, n)
}

func compileCold(t *testing.T, src string, opt Options) *CompileContext {
	t.Helper()
	cc := &CompileContext{Source: src, Opt: opt}
	if err := Run(cc); err != nil {
		t.Fatalf("cold compile: %v", err)
	}
	return cc
}

func compileIncr(t *testing.T, src string, opt Options, store *cache.ArtifactStore) (*CompileContext, *Delta) {
	t.Helper()
	cc := &CompileContext{Source: src, Opt: opt}
	delta, err := RunIncremental(cc, store)
	if err != nil {
		t.Fatalf("incremental compile: %v", err)
	}
	return cc, delta
}

// snapshot renders everything downstream consumers read from a compiled
// context: the (post-distribution) IR, the per-proc communication events
// and notes, the selection notes, the reduction plans and the
// verification report.  Two contexts with equal snapshots produce
// byte-identical reports, node programs and diagnostics.
func snapshot(cc *CompileContext) string {
	var b strings.Builder
	b.WriteString(ir.Print(cc.IR))
	for _, proc := range cc.IR.Procs {
		a := cc.Comm[proc.Name]
		fmt.Fprintf(&b, "== comm %s\n", proc.Name)
		for _, e := range a.Events {
			b.WriteString(e.String() + "\n")
		}
		for _, n := range a.Notes {
			b.WriteString("note: " + n + "\n")
		}
	}
	fmt.Fprintf(&b, "== selection\n")
	// Report order (Notes), not emission order: a warm run emits thawed
	// notes at install time, but every consumer reads the sorted log.
	for _, n := range cc.Sel.Notes() {
		b.WriteString(n + "\n")
	}
	fmt.Fprintf(&b, "== reductions\n")
	for _, proc := range cc.IR.Procs {
		for _, r := range cc.Reductions[proc.Name] {
			fmt.Fprintf(&b, "%s: %s op %c stmt %d\n", proc.Name, r.Var, r.Op, r.Stmt.ID)
		}
	}
	if cc.Verify != nil {
		fmt.Fprintf(&b, "== verify\n%s", cc.Verify.String())
	}
	return b.String()
}

// editAdd makes the canonical warm edit: a one-constant change inside
// the add procedure.
func editAdd(src string, i int) string {
	edited := strings.Replace(src, "0.10000", fmt.Sprintf("0.1%04d", i), 1)
	if edited == src {
		panic("edit marker not found in source")
	}
	return edited
}

// An incremental recompile after an edit must be byte-identical to a
// cold compile of the edited source, while recompiling only the edited
// procedure and its callers.
func TestIncrementalMatchesColdAfterEdit(t *testing.T) {
	base := incrSrc(16)
	store := cache.NewArtifactStore(0)
	compileIncr(t, base, DefaultOptions(), store) // prime

	edited := editAdd(base, 1)
	warm, delta := compileIncr(t, edited, DefaultOptions(), store)
	cold := compileCold(t, edited, DefaultOptions())

	if got, want := snapshot(warm), snapshot(cold); got != want {
		t.Fatalf("incremental output differs from cold:\n--- incremental ---\n%s\n--- cold ---\n%s", got, want)
	}
	if delta.Dirty >= delta.Procs {
		t.Fatalf("delta = %v: nothing was reused", delta)
	}
	// add changed; main's environment embeds add.  Nothing else moves.
	if delta.Dirty != 2 {
		t.Errorf("dirty procs = %v, want exactly [add main]", delta.DirtyProcs)
	}
	if delta.ArtifactHits == 0 {
		t.Error("no artifacts were thawed on the warm edit")
	}
}

// The differential matrix: every ablation of an optional pass must also
// hold the byte-identical invariant, under a sequence of distinct edits.
func TestIncrementalMatchesColdUnderAblations(t *testing.T) {
	base := incrSrc(12)
	ablations := [][]string{nil}
	for _, name := range OptionalPassNames() {
		ablations = append(ablations, []string{name})
	}
	for _, disable := range ablations {
		name := "default"
		if len(disable) > 0 {
			name = "no-" + disable[0]
		}
		t.Run(name, func(t *testing.T) {
			opt := DefaultOptions().WithDisabled(disable...)
			store := cache.NewArtifactStore(0)
			compileIncr(t, base, opt, store)
			for i := 1; i <= 2; i++ {
				edited := editAdd(base, i)
				warm, _ := compileIncr(t, edited, opt, store)
				cold := compileCold(t, edited, opt)
				if got, want := snapshot(warm), snapshot(cold); got != want {
					t.Fatalf("edit %d: incremental differs from cold:\n--- incremental ---\n%s\n--- cold ---\n%s", i, got, want)
				}
			}
		})
	}
}

// The shipped example programs must round-trip through the incremental
// path unchanged too (single-procedure programs: the whole program is
// one unit, so a recompile of identical source must be fully cached and
// identical).
func TestIncrementalMatchesColdOnTestdata(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.hpf")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata files found: %v", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			store := cache.NewArtifactStore(0)
			compileIncr(t, string(src), DefaultOptions(), store)
			warm, delta := compileIncr(t, string(src), DefaultOptions(), store)
			cold := compileCold(t, string(src), DefaultOptions())
			if got, want := snapshot(warm), snapshot(cold); got != want {
				t.Fatalf("incremental differs from cold:\n--- incremental ---\n%s\n--- cold ---\n%s", got, want)
			}
			if delta.Dirty != 0 {
				t.Errorf("identical recompile dirtied %v", delta.DirtyProcs)
			}
		})
	}
}

// A recompile of identical source reuses everything and marks the
// per-procedure passes cached in the stats.
func TestIncrementalIdenticalRecompileFullyCached(t *testing.T) {
	src := incrSrc(12)
	store := cache.NewArtifactStore(0)
	compileIncr(t, src, DefaultOptions(), store)
	cc, delta := compileIncr(t, src, DefaultOptions(), store)

	if delta.Dirty != 0 || delta.ArtifactMisses != 0 {
		t.Fatalf("identical recompile: delta = %v", delta)
	}
	cached := map[string]bool{}
	for _, st := range cc.Stats {
		cached[st.Name] = st.Cached
	}
	for _, name := range []string{PassDependence, PassCPSelect, PassNewProp, PassLocalize, PassInterproc,
		PassCommPlan, PassAvailability, PassWritebackRed, PassVerify} {
		if !cached[name] {
			t.Errorf("pass %s not marked cached on identical recompile", name)
		}
	}
	if table := StatsTable(cc.Stats); !strings.Contains(table, "cached") {
		t.Error("StatsTable does not label cached passes")
	}
}

// Whitespace- and comment-only edits dirty nothing.
func TestIncrementalWhitespaceEditDirtiesNothing(t *testing.T) {
	src := incrSrc(12)
	store := cache.NewArtifactStore(0)
	compileIncr(t, src, DefaultOptions(), store)
	noisy := strings.Replace(src, "subroutine add(u, r)",
		"! cosmetic comment\nsubroutine  add(u,   r)", 1)
	_, delta := compileIncr(t, noisy, DefaultOptions(), store)
	if delta.Dirty != 0 {
		t.Fatalf("cosmetic edit dirtied %v", delta.DirtyProcs)
	}
}

// Changing options must not reuse artifacts across option sets, and the
// outputs under the new options must match a cold compile.
func TestIncrementalOptionChangeRecompiles(t *testing.T) {
	src := incrSrc(12)
	store := cache.NewArtifactStore(0)
	compileIncr(t, src, DefaultOptions(), store)

	opt := DefaultOptions().WithDisabled(PassAvailability)
	warm, delta := compileIncr(t, src, opt, store)
	if delta.Dirty != delta.Procs {
		t.Fatalf("option change reused artifacts: %v", delta)
	}
	cold := compileCold(t, src, opt)
	if snapshot(warm) != snapshot(cold) {
		t.Fatal("incremental under changed options differs from cold")
	}
}

// A syntax error introduced by an edit must surface through the warm
// path with exactly the cold parser's message — the chunk-level parse
// cache falls back to a whole-source parse on any synthetic-parse
// anomaly so line numbers stay true to the original text.
func TestIncrementalParseErrorMatchesCold(t *testing.T) {
	base := incrSrc(12)
	store := cache.NewArtifactStore(0)
	compileIncr(t, base, DefaultOptions(), store)

	broken := strings.Replace(base, "u(i,j,k) + 0.10000*r(i,j,k)", "u(i,j,k) + + 0.10000*", 1)
	if broken == base {
		t.Fatal("edit marker not found")
	}
	coldErr := Run(&CompileContext{Source: broken, Opt: DefaultOptions()})
	if coldErr == nil {
		t.Fatal("cold compile of broken source succeeded")
	}
	_, warmErr := RunIncremental(&CompileContext{Source: broken, Opt: DefaultOptions()}, store)
	if warmErr == nil {
		t.Fatal("incremental compile of broken source succeeded")
	}
	if warmErr.Error() != coldErr.Error() {
		t.Fatalf("warm error %q != cold error %q", warmErr, coldErr)
	}
}
