// Artifact persistence: a stable binary encoding for the frozen
// artifact tiers so the incremental compiler's per-unit checkpoint DAG
// can live in a durable chunk store (internal/store) and survive
// restarts.
//
// NewStoreBacking adapts a *store.Store into a cache.ArtifactBacking:
// every Put of a serializable artifact becomes a content-addressed
// chunk plus a one-ref manifest keyed by the artifact's existing
// content key (kind + env fingerprint), and every miss reads through.
// Because artifact keys are content fingerprints, what's on disk can
// never be stale — at worst it is absent.
//
// Serializable tiers: deps, sel, comm, verify, analyze (pure-data
// frozen structs) and the rawunit/calls front-end tiers (strings).  The ast
// tier holds live *ir.Procedure graphs and is deliberately memory-only:
// a restart re-parses, which keeps output byte-identical at a small,
// bounded cost.  Encoding an unsupported kind is a silent no-op and
// decoding bytes from an older format version is a miss (codec
// envelope check), so schema evolution degrades to recompute, never to
// failure.
package passes

import (
	"math"
	"sort"
	"strings"

	"dhpf/internal/analysis"
	"dhpf/internal/cache"
	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/dep"
	"dhpf/internal/ir"
	"dhpf/internal/iset"
	"dhpf/internal/store"
	"dhpf/internal/store/codec"
	"dhpf/internal/verify"
)

// artifactCodecVersion is the body-layout version shared by every
// artifact format below; bump it when any frozen struct changes shape.
const artifactCodecVersion = 1

// NewStoreBacking returns a durable backing for the artifact tier,
// persisting frozen artifacts into st.
func NewStoreBacking(st *store.Store) cache.ArtifactBacking {
	return &storeBacking{st: st}
}

type storeBacking struct {
	st *store.Store
}

// artifactKind extracts the tier name from an artifact key
// (kind \x00 fingerprint — see artifactKey).
func artifactKind(key string) string {
	kind, _, _ := strings.Cut(key, "\x00")
	return kind
}

func (b *storeBacking) Store(key string, val any, size int64) {
	data, ok := encodeArtifact(artifactKind(key), val)
	if !ok {
		return
	}
	addr, err := b.st.PutChunk(data)
	if err != nil {
		return // store closed or disk failed: in-memory tier still works
	}
	// Errors here mean the value simply isn't durable; the next restart
	// recomputes it.
	_ = b.st.PutManifest(key, store.Manifest{
		Kind: "artifact",
		Refs: []store.ChunkRef{{Name: "artifact", Addr: addr}},
	})
}

func (b *storeBacking) Load(key string) (any, int64, bool) {
	m, ok := b.st.GetManifest(key)
	if !ok || m.Kind != "artifact" || len(m.Refs) != 1 {
		return nil, 0, false
	}
	data, ok := b.st.GetChunk(m.Refs[0].Addr)
	if !ok {
		return nil, 0, false
	}
	val, ok := decodeArtifact(artifactKind(key), data)
	if !ok {
		return nil, 0, false
	}
	return val, approxSize(val), true
}

// encodeArtifact serializes one artifact value; ok=false means the kind
// is not persisted (ast) or the value has an unexpected type.
func encodeArtifact(kind string, val any) ([]byte, bool) {
	switch kind {
	case artifactDeps:
		v, ok := val.(*frozenDeps)
		if !ok {
			return nil, false
		}
		w := codec.NewWriter("artifact/"+kind, artifactCodecVersion)
		encDeps(w, v)
		return w.Bytes(), true
	case artifactSel:
		v, ok := val.(*frozenSel)
		if !ok || v.Sel == nil {
			return nil, false
		}
		w := codec.NewWriter("artifact/"+kind, artifactCodecVersion)
		encSel(w, v)
		return w.Bytes(), true
	case artifactComm:
		v, ok := val.(*frozenComm)
		if !ok {
			return nil, false
		}
		w := codec.NewWriter("artifact/"+kind, artifactCodecVersion)
		encComm(w, v)
		return w.Bytes(), true
	case artifactVerify:
		v, ok := val.(*frozenVerify)
		if !ok {
			return nil, false
		}
		w := codec.NewWriter("artifact/"+kind, artifactCodecVersion)
		encVerify(w, v)
		return w.Bytes(), true
	case artifactAnalyze:
		v, ok := val.(*frozenAnalyze)
		if !ok {
			return nil, false
		}
		w := codec.NewWriter("artifact/"+kind, artifactCodecVersion)
		encAnalyze(w, v)
		return w.Bytes(), true
	case artifactRawUnit:
		v, ok := val.(string)
		if !ok {
			return nil, false
		}
		w := codec.NewWriter("artifact/"+kind, artifactCodecVersion)
		w.String(v)
		return w.Bytes(), true
	case artifactCalls:
		v, ok := val.([]string)
		if !ok {
			return nil, false
		}
		w := codec.NewWriter("artifact/"+kind, artifactCodecVersion)
		encStrings(w, v)
		return w.Bytes(), true
	}
	return nil, false
}

// decodeArtifact is the inverse of encodeArtifact; ok=false covers
// unknown kinds, format-version mismatches, and corrupt bodies — all
// treated as misses by the backing.
func decodeArtifact(kind string, data []byte) (any, bool) {
	r, err := codec.NewReader(data, "artifact/"+kind, artifactCodecVersion)
	if err != nil {
		return nil, false
	}
	switch kind {
	case artifactDeps:
		v := decDeps(r)
		return v, r.Done()
	case artifactSel:
		v := decSel(r)
		return v, r.Done() && v.Sel != nil
	case artifactComm:
		v := decComm(r)
		return v, r.Done()
	case artifactVerify:
		v := decVerify(r)
		return v, r.Done()
	case artifactAnalyze:
		v := decAnalyze(r)
		return v, r.Done()
	case artifactRawUnit:
		v := r.String()
		return v, r.Done()
	case artifactCalls:
		v := decStrings(r)
		return v, r.Done()
	}
	return nil, false
}

// --- shared leaf encoders ----------------------------------------------------

func encStrings(w *codec.Writer, ss []string) {
	w.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

func decStrings(r *codec.Reader) []string {
	n := r.Uvarint()
	var out []string
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		out = append(out, r.String())
	}
	return out
}

func encInts(w *codec.Writer, vs []int) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Int(v)
	}
}

func decInts(r *codec.Reader) []int {
	n := r.Uvarint()
	var out []int
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		out = append(out, r.Int())
	}
	return out
}

func encAff(w *codec.Writer, a ir.AffExpr) {
	w.Int(a.Const)
	w.Uvarint(uint64(len(a.Terms)))
	for _, t := range a.Terms {
		w.String(t.Name)
		w.Int(t.Coef)
	}
}

func decAff(r *codec.Reader) ir.AffExpr {
	a := ir.AffExpr{Const: r.Int()}
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		a.Terms = append(a.Terms, ir.AffTerm{Name: r.String(), Coef: r.Int()})
	}
	return a
}

func encRefSel(w *codec.Writer, s refSel) {
	w.Int(s.Kind)
	w.Int(s.Idx)
	w.String(s.Name)
}

func decRefSel(r *codec.Reader) refSel {
	return refSel{Kind: r.Int(), Idx: r.Int(), Name: r.String()}
}

func encCP(w *codec.Writer, c *cp.CP) {
	w.Bool(c != nil)
	if c == nil {
		return
	}
	w.Uvarint(uint64(len(c.Terms)))
	for _, t := range c.Terms {
		w.String(t.Array)
		w.Uvarint(uint64(len(t.Subs)))
		for _, s := range t.Subs {
			w.String(s.Var)
			w.Int(s.Coef)
			encAff(w, s.Off)
			w.Bool(s.IsRange)
			encAff(w, s.Lo)
			encAff(w, s.Hi)
		}
	}
}

func decCP(r *codec.Reader) *cp.CP {
	if !r.Bool() {
		return nil
	}
	c := &cp.CP{}
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		t := cp.Term{Array: r.String()}
		ns := r.Uvarint()
		for j := uint64(0); j < ns && r.Err() == nil; j++ {
			t.Subs = append(t.Subs, cp.HomeSub{
				Var:     r.String(),
				Coef:    r.Int(),
				Off:     decAff(r),
				IsRange: r.Bool(),
				Lo:      decAff(r),
				Hi:      decAff(r),
			})
		}
		c.Terms = append(c.Terms, t)
	}
	return c
}

// --- per-tier bodies ---------------------------------------------------------

func encDeps(w *codec.Writer, v *frozenDeps) {
	w.Uvarint(uint64(len(v.Deps)))
	for _, d := range v.Deps {
		w.Int(int(d.Kind))
		w.Int(d.Src)
		w.Int(d.Dst)
		encRefSel(w, d.SrcRef)
		encRefSel(w, d.DstRef)
		w.Uvarint(uint64(len(d.Distance)))
		for _, dd := range d.Distance {
			w.Bool(dd.Known)
			w.Int(dd.D)
		}
		w.Int(d.Level)
	}
}

func decDeps(r *codec.Reader) *frozenDeps {
	out := &frozenDeps{}
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		d := frozenDep{
			Kind:   dep.Kind(r.Int()),
			Src:    r.Int(),
			Dst:    r.Int(),
			SrcRef: decRefSel(r),
			DstRef: decRefSel(r),
		}
		nd := r.Uvarint()
		for j := uint64(0); j < nd && r.Err() == nil; j++ {
			d.Distance = append(d.Distance, dep.Dist{Known: r.Bool(), D: r.Int()})
		}
		d.Level = r.Int()
		out.Deps = append(out.Deps, d)
	}
	return out
}

func encSel(w *codec.Writer, v *frozenSel) {
	ids := make([]int, 0, len(v.Sel.CPs))
	for id := range v.Sel.CPs {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic bytes => chunk-level dedup works
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.Int(id)
		encCP(w, v.Sel.CPs[id])
	}
	encCP(w, v.Sel.Entry)
	w.Bool(v.Sel.HasEntry)
	w.Uvarint(uint64(len(v.Sel.Marked)))
	for _, p := range v.Sel.Marked {
		w.Int(p[0])
		w.Int(p[1])
	}
	w.Uvarint(uint64(len(v.Sel.Notes)))
	for _, n := range v.Sel.Notes {
		w.Int(n.Late)
		w.Int(n.Entry)
		w.Int(n.Top)
		w.Int(n.Phase)
		w.Int(n.Loop)
		w.Int(n.Sub)
		w.String(n.Text)
	}
	encInts(w, v.OldIDs)
}

func decSel(r *codec.Reader) *frozenSel {
	ps := &cp.ProcSelection{CPs: map[int]*cp.CP{}}
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		id := r.Int()
		ps.CPs[id] = decCP(r)
	}
	ps.Entry = decCP(r)
	ps.HasEntry = r.Bool()
	nm := r.Uvarint()
	for i := uint64(0); i < nm && r.Err() == nil; i++ {
		ps.Marked = append(ps.Marked, [2]int{r.Int(), r.Int()})
	}
	nn := r.Uvarint()
	for i := uint64(0); i < nn && r.Err() == nil; i++ {
		ps.Notes = append(ps.Notes, cp.ProcNote{
			Late: r.Int(), Entry: r.Int(), Top: r.Int(),
			Phase: r.Int(), Loop: r.Int(), Sub: r.Int(),
			Text: r.String(),
		})
	}
	out := &frozenSel{Sel: ps, OldIDs: decInts(r)}
	if r.Err() != nil {
		return &frozenSel{}
	}
	return out
}

func encComm(w *codec.Writer, v *frozenComm) {
	w.Uvarint(uint64(len(v.Events)))
	for _, e := range v.Events {
		w.Int(int(e.Kind))
		w.Int(e.Stmt)
		encRefSel(w, e.Ref)
		w.Int(e.Depth)
		w.Bool(e.Pipelined)
		w.Bool(e.Eliminated)
		w.String(e.Reason)
	}
	encStrings(w, v.Notes)
	encInts(w, v.OldIDs)
}

func decComm(r *codec.Reader) *frozenComm {
	out := &frozenComm{}
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		out.Events = append(out.Events, frozenEvent{
			Kind:       comm.Kind(r.Int()),
			Stmt:       r.Int(),
			Ref:        decRefSel(r),
			Depth:      r.Int(),
			Pipelined:  r.Bool(),
			Eliminated: r.Bool(),
			Reason:     r.String(),
		})
	}
	out.Notes = decStrings(r)
	out.OldIDs = decInts(r)
	return out
}

func encVerify(w *codec.Writer, v *frozenVerify) {
	w.Uvarint(uint64(len(v.Diagnostics)))
	for _, d := range v.Diagnostics {
		w.String(d.Check)
		w.String(string(d.Severity))
		w.String(d.Proc)
		w.Int(d.Stmt)
		w.String(d.Ref)
		w.String(d.Set)
		w.String(d.Why)
	}
	w.Int(v.Stmts)
	w.Int(v.Events)
	w.Int(v.Ranks)
	encInts(w, v.OldIDs)
}

func encDiagnostics(w *codec.Writer, ds []verify.Diagnostic) {
	w.Uvarint(uint64(len(ds)))
	for _, d := range ds {
		w.String(d.Check)
		w.String(string(d.Severity))
		w.String(d.Proc)
		w.Int(d.Stmt)
		w.String(d.Ref)
		w.String(d.Set)
		w.String(d.Why)
	}
}

func decDiagnostics(r *codec.Reader) []verify.Diagnostic {
	var out []verify.Diagnostic
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		out = append(out, verify.Diagnostic{
			Check:    r.String(),
			Severity: verify.Severity(r.String()),
			Proc:     r.String(),
			Stmt:     r.Int(),
			Ref:      r.String(),
			Set:      r.String(),
			Why:      r.String(),
		})
	}
	return out
}

func encFloat(w *codec.Writer, f float64) { w.Uvarint(math.Float64bits(f)) }
func decFloat(r *codec.Reader) float64    { return math.Float64frombits(r.Uvarint()) }

func encAnalyze(w *codec.Writer, v *frozenAnalyze) {
	w.String(v.Proc.Proc)
	w.Uvarint(uint64(len(v.Proc.Phases)))
	for _, ph := range v.Proc.Phases {
		w.Int(ph.Index)
		w.Int(ph.Stmt)
		w.String(ph.Kind)
		w.Uvarint(uint64(len(ph.Loops)))
		for _, l := range ph.Loops {
			w.Int(l.Stmt)
			w.String(l.Var)
			w.String(l.Bounds)
			w.String(l.Trip)
			w.Int(int(l.Points))
		}
		encFloat(w, ph.Flops)
		encFootprints(w, ph.Reads)
		encFootprints(w, ph.Writes)
		w.Int(ph.CommEvents)
		w.Int(int(ph.CommElems))
		encInt64s(w, ph.PerRankComm)
	}
	encDiagnostics(w, v.Diagnostics)
	encIfaceSets(w, v.Iface.Reads)
	encIfaceSets(w, v.Iface.Writes)
	encInts(w, v.OldIDs)
}

func decAnalyze(r *codec.Reader) *frozenAnalyze {
	out := &frozenAnalyze{}
	out.Proc.Proc = r.String()
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		ph := analysis.PhaseSummary{
			Index: r.Int(),
			Stmt:  r.Int(),
			Kind:  r.String(),
		}
		nl := r.Uvarint()
		for k := uint64(0); k < nl && r.Err() == nil; k++ {
			ph.Loops = append(ph.Loops, analysis.LoopSummary{
				Stmt:   r.Int(),
				Var:    r.String(),
				Bounds: r.String(),
				Trip:   r.String(),
				Points: int64(r.Int()),
			})
		}
		ph.Flops = decFloat(r)
		ph.Reads = decFootprints(r)
		ph.Writes = decFootprints(r)
		ph.CommEvents = r.Int()
		ph.CommElems = int64(r.Int())
		ph.PerRankComm = decInt64s(r)
		out.Proc.Phases = append(out.Proc.Phases, ph)
	}
	out.Diagnostics = decDiagnostics(r)
	out.Iface.Reads = decIfaceSets(r)
	out.Iface.Writes = decIfaceSets(r)
	out.OldIDs = decInts(r)
	return out
}

// encIfaceSets encodes a name → integer-set map (a procedure interface
// side) as sorted names with each set's rank and box list.
func encIfaceSets(w *codec.Writer, m map[string]iset.Set) {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	w.Uvarint(uint64(len(names)))
	for _, n := range names {
		w.String(n)
		s := m[n]
		w.Uvarint(uint64(s.Rank()))
		boxes := s.Boxes()
		w.Uvarint(uint64(len(boxes)))
		for _, b := range boxes {
			encInts(w, b.Lo)
			encInts(w, b.Hi)
		}
	}
}

func decIfaceSets(r *codec.Reader) map[string]iset.Set {
	out := map[string]iset.Set{}
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		name := r.String()
		rank := int(r.Uvarint())
		s := iset.EmptySet(rank)
		nb := r.Uvarint()
		for k := uint64(0); k < nb && r.Err() == nil; k++ {
			lo := decInts(r)
			hi := decInts(r)
			s = s.UnionBox(iset.NewBox(lo, hi))
		}
		out[name] = s
	}
	return out
}

func encFootprints(w *codec.Writer, fs []analysis.Footprint) {
	w.Uvarint(uint64(len(fs)))
	for _, f := range fs {
		w.String(f.Array)
		w.String(f.Set)
		w.Int(int(f.Elems))
	}
}

func decFootprints(r *codec.Reader) []analysis.Footprint {
	var out []analysis.Footprint
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		out = append(out, analysis.Footprint{Array: r.String(), Set: r.String(), Elems: int64(r.Int())})
	}
	return out
}

func encInt64s(w *codec.Writer, vs []int64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Int(int(v))
	}
}

func decInt64s(r *codec.Reader) []int64 {
	var out []int64
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		out = append(out, int64(r.Int()))
	}
	return out
}

func decVerify(r *codec.Reader) *frozenVerify {
	out := &frozenVerify{}
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		out.Diagnostics = append(out.Diagnostics, verify.Diagnostic{
			Check:    r.String(),
			Severity: verify.Severity(r.String()),
			Proc:     r.String(),
			Stmt:     r.Int(),
			Ref:      r.String(),
			Set:      r.String(),
			Why:      r.String(),
		})
	}
	out.Stmts = r.Int()
	out.Events = r.Int()
	out.Ranks = r.Int()
	out.OldIDs = decInts(r)
	return out
}
