package passes

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"dhpf/internal/cp"
)

// TestFingerprintCanonical: semantically equal Options fingerprint
// identically — Disable order and duplicates don't matter.
func TestFingerprintCanonical(t *testing.T) {
	a := DefaultOptions().WithDisabled(PassAvailability, PassLoopDist)
	b := DefaultOptions().WithDisabled(PassLoopDist, PassAvailability)
	c := DefaultOptions().WithDisabled(PassLoopDist, PassAvailability, PassLoopDist)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("permuted Disable lists fingerprint differently")
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("duplicated Disable entry changes the fingerprint")
	}
	if got := DefaultOptions().Fingerprint(); got != DefaultOptions().Fingerprint() {
		t.Errorf("fingerprint not stable: %s", got)
	}
}

// TestFingerprintDistinguishes: every semantic change to the inputs
// yields a different key.
func TestFingerprintDistinguishes(t *testing.T) {
	base := DefaultOptions()
	variants := map[string]Options{
		"disable":    base.WithDisabled(PassAvailability),
		"grain":      func() Options { o := base; o.PipelineGrain = 16; return o }(),
		"instrument": func() Options { o := base; o.Instrument = true; return o }(),
		"localize":   func() Options { o := base; o.CP.Localize = false; return o }(),
		"loopdist":   func() Options { o := base; o.CP.LoopDist = false; return o }(),
		"interproc":  func() Options { o := base; o.CP.Interproc = false; return o }(),
		"newprop":    func() Options { o := base; o.CP.NewProp++; return o }(),
		"avail":      func() Options { o := base; o.Comm.Availability = false; return o }(),
		"wbelim":     func() Options { o := base; o.Comm.RedundantWriteback = false; return o }(),
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, o := range variants {
		fp := o.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[fp] = name
	}

	// The full key also separates source and params.
	src := "program p\nend\n"
	k0 := FingerprintKey(src, nil, base)
	if k0 != FingerprintKey(src, nil, base) {
		t.Error("key not stable")
	}
	if k0 != FingerprintKey(src, map[string]int{}, base) {
		t.Error("nil and empty params must key identically")
	}
	if k0 == FingerprintKey(src+" ", nil, base) {
		t.Error("source change not reflected in key")
	}
	if k0 == FingerprintKey(src, map[string]int{"N": 8}, base) {
		t.Error("param change not reflected in key")
	}
	if FingerprintKey(src, map[string]int{"N": 8, "P": 2}, base) !=
		FingerprintKey(src, map[string]int{"P": 2, "N": 8}, base) {
		t.Error("param map ordering changes the key")
	}
}

// randomOptions draws an Options value spanning every tunable field the
// auto-tuner can set through dhpf.TuneOptions.
func randomOptions(rng *rand.Rand) Options {
	o := DefaultOptions()
	o.CP.NewProp = cp.NewPropMode(rng.Intn(3))
	o.CP.Localize = rng.Intn(2) == 0
	o.CP.LoopDist = rng.Intn(2) == 0
	o.CP.Interproc = rng.Intn(2) == 0
	o.CP.MaxCombos = 1 + rng.Intn(64)
	o.Comm.Availability = rng.Intn(2) == 0
	o.Comm.RedundantWriteback = rng.Intn(2) == 0
	o.PipelineGrain = 1 << rng.Intn(6)
	o.Instrument = rng.Intn(2) == 0
	optional := OptionalPassNames()
	for _, p := range rng.Perm(len(optional))[:rng.Intn(len(optional)+1)] {
		o.Disable = append(o.Disable, optional[p])
	}
	return o
}

// TestFingerprintPermutationInvariantProperty: for random Options, any
// permutation (plus random duplication) of the Disable list fingerprints
// identically — the cache key depends on the ablation set, not its
// spelling.
func TestFingerprintPermutationInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		o := randomOptions(rng)
		want := o.Fingerprint()
		perm := o
		perm.Disable = make([]string, 0, len(o.Disable)+2)
		for _, i := range rng.Perm(len(o.Disable)) {
			perm.Disable = append(perm.Disable, o.Disable[i])
		}
		for i := 0; i < len(o.Disable) && i < 2; i++ {
			perm.Disable = append(perm.Disable, o.Disable[rng.Intn(len(o.Disable))])
		}
		if got := perm.Fingerprint(); got != want {
			t.Fatalf("trial %d: permuted Disable %v fingerprints differently from %v",
				trial, perm.Disable, o.Disable)
		}
	}
}

// TestFingerprintFieldSensitivityProperty: from random base Options,
// mutating any single tunable field changes the fingerprint — no two
// distinct configurations can alias one cache entry.
func TestFingerprintFieldSensitivityProperty(t *testing.T) {
	optional := OptionalPassNames()
	mutations := map[string]func(*rand.Rand, *Options){
		"newprop":    func(r *rand.Rand, o *Options) { o.CP.NewProp = (o.CP.NewProp + 1 + cp.NewPropMode(r.Intn(2))) % 3 },
		"localize":   func(_ *rand.Rand, o *Options) { o.CP.Localize = !o.CP.Localize },
		"loopdist":   func(_ *rand.Rand, o *Options) { o.CP.LoopDist = !o.CP.LoopDist },
		"interproc":  func(_ *rand.Rand, o *Options) { o.CP.Interproc = !o.CP.Interproc },
		"maxcombos":  func(_ *rand.Rand, o *Options) { o.CP.MaxCombos++ },
		"avail":      func(_ *rand.Rand, o *Options) { o.Comm.Availability = !o.Comm.Availability },
		"wbelim":     func(_ *rand.Rand, o *Options) { o.Comm.RedundantWriteback = !o.Comm.RedundantWriteback },
		"grain":      func(_ *rand.Rand, o *Options) { o.PipelineGrain *= 2 },
		"instrument": func(_ *rand.Rand, o *Options) { o.Instrument = !o.Instrument },
		"disable": func(r *rand.Rand, o *Options) {
			// Toggle one pass's membership in the ablation set.
			name := optional[r.Intn(len(optional))]
			kept := o.Disable[:0]
			found := false
			for _, d := range o.Disable {
				if d == name {
					found = true
				} else {
					kept = append(kept, d)
				}
			}
			o.Disable = kept
			if !found {
				o.Disable = append(o.Disable, name)
			}
		},
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		base := randomOptions(rng)
		want := base.Fingerprint()
		for name, mutate := range mutations {
			mutated := base
			mutated.Disable = append([]string{}, base.Disable...)
			mutate(rng, &mutated)
			if mutated.Fingerprint() == want {
				t.Fatalf("trial %d: mutating %q did not change the fingerprint (base %+v)",
					trial, name, base)
			}
		}
	}
}

// TestRunCtxCancelled: a pre-cancelled context aborts before the first
// pass and reports which boundary stopped it.
func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc := &CompileContext{Source: "program p\nend\n", Opt: DefaultOptions()}
	err := RunCtx(ctx, cc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), PassParse) {
		t.Errorf("error should name the boundary: %v", err)
	}
	if len(cc.Stats) != 0 {
		t.Errorf("aborted run recorded %d pass stats", len(cc.Stats))
	}
}
