package passes

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestFingerprintCanonical: semantically equal Options fingerprint
// identically — Disable order and duplicates don't matter.
func TestFingerprintCanonical(t *testing.T) {
	a := DefaultOptions().WithDisabled(PassAvailability, PassLoopDist)
	b := DefaultOptions().WithDisabled(PassLoopDist, PassAvailability)
	c := DefaultOptions().WithDisabled(PassLoopDist, PassAvailability, PassLoopDist)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("permuted Disable lists fingerprint differently")
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("duplicated Disable entry changes the fingerprint")
	}
	if got := DefaultOptions().Fingerprint(); got != DefaultOptions().Fingerprint() {
		t.Errorf("fingerprint not stable: %s", got)
	}
}

// TestFingerprintDistinguishes: every semantic change to the inputs
// yields a different key.
func TestFingerprintDistinguishes(t *testing.T) {
	base := DefaultOptions()
	variants := map[string]Options{
		"disable":    base.WithDisabled(PassAvailability),
		"grain":      func() Options { o := base; o.PipelineGrain = 16; return o }(),
		"instrument": func() Options { o := base; o.Instrument = true; return o }(),
		"localize":   func() Options { o := base; o.CP.Localize = false; return o }(),
		"loopdist":   func() Options { o := base; o.CP.LoopDist = false; return o }(),
		"interproc":  func() Options { o := base; o.CP.Interproc = false; return o }(),
		"newprop":    func() Options { o := base; o.CP.NewProp++; return o }(),
		"avail":      func() Options { o := base; o.Comm.Availability = false; return o }(),
		"wbelim":     func() Options { o := base; o.Comm.RedundantWriteback = false; return o }(),
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, o := range variants {
		fp := o.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[fp] = name
	}

	// The full key also separates source and params.
	src := "program p\nend\n"
	k0 := FingerprintKey(src, nil, base)
	if k0 != FingerprintKey(src, nil, base) {
		t.Error("key not stable")
	}
	if k0 != FingerprintKey(src, map[string]int{}, base) {
		t.Error("nil and empty params must key identically")
	}
	if k0 == FingerprintKey(src+" ", nil, base) {
		t.Error("source change not reflected in key")
	}
	if k0 == FingerprintKey(src, map[string]int{"N": 8}, base) {
		t.Error("param change not reflected in key")
	}
	if FingerprintKey(src, map[string]int{"N": 8, "P": 2}, base) !=
		FingerprintKey(src, map[string]int{"P": 2, "N": 8}, base) {
		t.Error("param map ordering changes the key")
	}
}

// TestRunCtxCancelled: a pre-cancelled context aborts before the first
// pass and reports which boundary stopped it.
func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc := &CompileContext{Source: "program p\nend\n", Opt: DefaultOptions()}
	err := RunCtx(ctx, cc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), PassParse) {
		t.Errorf("error should name the boundary: %v", err)
	}
	if len(cc.Stats) != 0 {
		t.Errorf("aborted run recorded %d pass stats", len(cc.Stats))
	}
}
