package passes

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"dhpf/internal/analysis"
	"dhpf/internal/cache"
	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/dep"
	"dhpf/internal/ir"
	"dhpf/internal/parser"
	"dhpf/internal/verify"
)

// Delta summarizes one incremental compile: how much of the program was
// dirty and how the artifact store fared.  Hits count artifacts thawed
// from the store; misses count artifacts that had to be recomputed
// (because the procedure's environment fingerprint changed, the store had
// evicted the entry, or a thaw failed its consistency checks).
type Delta struct {
	Procs          int      `json:"procs"`
	Dirty          int      `json:"dirty"`
	DirtyProcs     []string `json:"dirty_procs,omitempty"`
	ArtifactHits   int64    `json:"artifact_hits"`
	ArtifactMisses int64    `json:"artifact_misses"`
}

func (d *Delta) String() string {
	return fmt.Sprintf("incremental: %d/%d procs dirty %v, %d artifacts reused, %d recomputed",
		d.Dirty, d.Procs, d.DirtyProcs, d.ArtifactHits, d.ArtifactMisses)
}

// incrRun is the per-compile state of the incremental scheduler.
type incrRun struct {
	cc    *CompileContext
	store *cache.ArtifactStore
	fps   *unitFingerprints
	// src is the compile's source text, or "" when the caller supplied a
	// pre-parsed program — the raw-text shortcut tiers (ast, rawunit) key
	// on source chunks and must stay off in that case.
	src string
	// dirty marks procedures whose dependence artifact was recomputed —
	// the procedures whose environment changed since the artifacts were
	// frozen.
	dirty map[*ir.Procedure]bool
	// selOrder is the bottom-up call-graph order the selection phases
	// iterate; selDirty marks procedures whose selection is being computed
	// this run (dirty, or whose frozen selection failed to thaw), and
	// selFrozen latches the one-shot freeze of their finished state at the
	// pre-distribution boundary.
	selOrder  []*ir.Procedure
	selDirty  map[*ir.Procedure]bool
	selFrozen bool
	// commFresh marks procedures whose communication plan was built this
	// run (rather than thawed); only these may have the elimination
	// phases applied, and only these are frozen at lower time.
	commFresh map[*ir.Procedure]bool
	delta     *Delta
}

// RunIncremental is RunCtx with artifact memoization: per-procedure
// dependence graphs, CP selections, communication plans and verification
// fragments are reused from the store when the procedure's environment
// fingerprint is unchanged, and only dirty procedures are re-analyzed —
// in parallel on a bounded worker pool.  The cheap whole-program passes
// (parsing, binding, loop distribution, reductions, lowering) always
// run, so the resulting CompileContext is byte-for-byte identical to a
// cold RunCtx of the same source: reports, node programs and
// verification diagnostics cannot tell the difference.
func RunIncremental(cc *CompileContext, store *cache.ArtifactStore) (*Delta, error) {
	return RunIncrementalCtx(context.Background(), cc, store)
}

// RunIncrementalCtx is RunIncremental with cancellation at pass
// boundaries, mirroring RunCtx.
func RunIncrementalCtx(ctx context.Context, cc *CompileContext, store *cache.ArtifactStore) (*Delta, error) {
	if store == nil {
		return nil, fmt.Errorf("passes: RunIncremental needs an artifact store")
	}
	r := &incrRun{
		cc:        cc,
		store:     store,
		dirty:     map[*ir.Procedure]bool{},
		commFresh: map[*ir.Procedure]bool{},
		delta:     &Delta{},
	}
	if cc.IR == nil {
		r.src = cc.Source
	}
	pipeline, err := BuildPipeline(cc.Opt)
	if err != nil {
		return nil, err
	}
	overrides := map[string]func() (bool, error){
		PassParse:        r.parse,
		PassDependence:   r.dependence,
		PassCPSelect:     r.cpSelect,
		PassNewProp:      r.newProp,
		PassLocalize:     r.localize,
		PassInterproc:    r.interproc,
		PassCommPlan:     r.commPlan,
		PassAvailability: r.availability,
		PassWritebackRed: r.writebackRed,
		PassLower:        r.lower,
		PassVerify:       r.verify,
		PassAnalyze:      r.analyze,
	}
	var prev probe
	prevValid := false
	for _, p := range pipeline {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("passes: aborted before %s: %w", p.Name, err)
		}
		// The selection state is frozen at the last moment the
		// pre-distribution body exists.  Keying on either pass makes the
		// freeze independent of whether loopdist is ablated (reductions is
		// mandatory).
		if !r.selFrozen && (p.Name == PassLoopDist || p.Name == PassReductions) {
			r.freezeSelArtifacts()
			r.selFrozen = true
		}
		noteBase := 0
		if cc.Sel != nil {
			noteBase = cc.Sel.NoteCount()
		}
		start := time.Now() //vetdet:ok recompile wall times are -stats telemetry, never fingerprinted
		cached := false
		if ov, ok := overrides[p.Name]; ok {
			cached, err = ov()
		} else {
			err = p.Run(cc)
		}
		if err != nil {
			return nil, fmt.Errorf("pass %s: %w", p.Name, err)
		}
		st := Stat{Name: p.Name, Wall: time.Since(start), Cached: cached} //vetdet:ok telemetry
		if cc.Sel != nil {
			st.Notes = cc.Sel.NotesSince(noteBase)
		}
		st.Summary = summarize(p.Name, cc)
		if st.Summary == "" {
			st.Summary = fmt.Sprintf("%d decisions", len(st.Notes))
		}
		if cc.Opt.Instrument {
			cur, ok := measureComm(cc)
			if ok {
				st.Msgs, st.Bytes = cur.msgs, cur.bytes
				st.Measured = true
				if prevValid {
					st.DeltaBytes = cur.bytes - prev.bytes
					st.HasDelta = true
				}
				prev, prevValid = cur, true
			}
		}
		cc.Stats = append(cc.Stats, st)
		if p.Check != nil {
			if err := p.Check(cc); err != nil {
				return nil, fmt.Errorf("pass %s: invariant violated: %w", p.Name, err)
			}
		}
	}
	r.delta.Procs = len(cc.IR.Procs)
	return r.delta, nil
}

// parse replaces runParse: the source is split into per-subroutine raw
// chunks, and chunks seen before (under the same header) skip the parser
// entirely — the pristine cached Procedure is deep-cloned into the
// program instead.  Only unseen chunks are parsed, as a synthetic
// source of header + dirty chunks (token-equivalent to their place in
// the full text).  Statement ids are then renumbered program-wide in
// cold parse order, so the assembled AST — and everything downstream
// that prints statement ids — is identical to a cold parse.  Any
// irregularity (unsplittable source, parse error, chunk/procedure
// mismatch) falls back to the cold whole-source parse.
func (r *incrRun) parse() (bool, error) {
	cc := r.cc
	if cc.IR != nil || r.src == "" {
		return false, runParse(cc)
	}
	header, chunks := splitSource(r.src)
	if len(chunks) == 0 {
		return false, runParse(cc)
	}
	keys := make([]string, len(chunks))
	hit := make([]*ir.Procedure, len(chunks))
	misses := 0
	for i, ch := range chunks {
		h := sha256.Sum256([]byte(artifactVersion + "\x00ast\x00" + header + "\x00" + ch))
		keys[i] = artifactKey(artifactAST, hex.EncodeToString(h[:]))
		if v, ok := r.store.Get(keys[i]); ok {
			hit[i] = v.(*ir.Procedure)
		} else {
			misses++
		}
	}
	var sb strings.Builder
	sb.Grow(len(header) + len(r.src)/len(chunks)*misses + 64)
	sb.WriteString(header)
	for i, ch := range chunks {
		if hit[i] == nil {
			sb.WriteString(ch)
			sb.WriteByte('\n')
		}
	}
	prog, err := parser.Parse(sb.String())
	if err != nil || len(prog.Procs) != misses {
		// Either the chunking misjudged the source or the error position
		// would be misleading: report exactly what a cold parse reports.
		return false, runParse(cc)
	}
	procs := make([]*ir.Procedure, 0, len(chunks))
	next := 0
	for i := range chunks {
		if hit[i] != nil {
			procs = append(procs, ir.CloneProc(hit[i]))
			continue
		}
		proc := prog.Procs[next]
		next++
		procs = append(procs, proc)
		r.store.Put(keys[i], ir.CloneProc(proc), int64(128+8*len(chunks[i])))
	}
	prog.Procs = procs
	ir.RenumberStmts(prog)
	cc.IR = prog
	return misses == 0, nil
}

// dependence replaces runDependence: the context is built without
// dependence graphs, fingerprints decide which procedures are dirty, and
// only those are re-analyzed (in parallel).  Dirty graphs are frozen
// immediately — loop distribution rewrites references in place later, so
// this is the last moment the parse-stage selectors are computable.
func (r *incrRun) dependence() (bool, error) {
	cc := r.cc
	ctx, err := cp.NewContextNoDeps(cc.IR, cc.Bind)
	if err != nil {
		return false, err
	}
	grid, err := ctx.Grid()
	if err != nil {
		return false, err
	}
	r.fps = fingerprintUnits(ctx, cc.Opt, r.src, r.store)

	// Look the artifacts up serially (the store is cheap), then thaw the
	// hits on the worker pool — relocation walks every statement of every
	// clean procedure, which is the bulk of a fully-warm compile.
	frozen := make([]*frozenDeps, len(cc.IR.Procs))
	thawed := make([][]*dep.Dependence, len(cc.IR.Procs))
	for i, proc := range cc.IR.Procs {
		if v, ok := r.store.Get(artifactKey(artifactDeps, r.fps.Env[proc])); ok {
			frozen[i] = v.(*frozenDeps)
		}
	}
	forEach(len(cc.IR.Procs), 0, func(i int) error {
		if frozen[i] != nil {
			thawed[i], _ = thawDeps(cc.IR.Procs[i], frozen[i])
		}
		return nil
	})
	var dirtyIdx []int
	for i, proc := range cc.IR.Procs {
		if thawed[i] != nil {
			ctx.Deps[proc] = thawed[i]
			r.delta.ArtifactHits++
			continue
		}
		dirtyIdx = append(dirtyIdx, i)
		r.dirty[proc] = true
		r.delta.DirtyProcs = append(r.delta.DirtyProcs, proc.Name)
	}
	r.delta.Dirty = len(dirtyIdx)

	results := make([][]*dep.Dependence, len(dirtyIdx))
	forEach(len(dirtyIdx), 0, func(k int) error {
		results[k] = dep.Analyze(cc.IR.Procs[dirtyIdx[k]].Body)
		return nil
	})
	for k, i := range dirtyIdx {
		proc := cc.IR.Procs[i]
		ctx.Deps[proc] = results[k]
		r.delta.ArtifactMisses++
		r.store.MarkDirty(1)
		if fz, err := freezeDeps(proc, results[k]); err == nil {
			r.store.Put(artifactKey(artifactDeps, r.fps.Env[proc]), fz, approxSize(fz))
		}
	}
	cc.Ctx = ctx
	cc.Grid = grid
	return len(dirtyIdx) == 0, nil
}

// selClean is the skip predicate the partial selection phases take: a
// procedure is skipped when its frozen selection thawed successfully.
func (r *incrRun) selClean(p *ir.Procedure) bool { return !r.selDirty[p] }

// cpSelect replaces runCPSelect: clean procedures install their frozen
// post-§6 selection state (CPs, entry CP, marked pairs, decision notes);
// the base selection search runs only for the dirty ones.  The
// propagation and interprocedural phases below are restricted the same
// way, so for a fully-clean program all four selection passes are
// no-ops over thawed state.
func (r *incrRun) cpSelect() (bool, error) {
	cc := r.cc
	order, err := cc.Ctx.Callees()
	if err != nil {
		return false, err
	}
	r.selOrder = order
	sel := cp.NewSelection()
	cc.Sel = sel
	r.selDirty = map[*ir.Procedure]bool{}
	for pi, proc := range order {
		if !r.dirty[proc] {
			key := artifactKey(artifactSel, r.fps.Env[proc])
			if v, ok := r.store.Get(key); ok {
				if err := thawSel(proc, pi, sel, v.(*frozenSel)); err == nil {
					r.delta.ArtifactHits++
					continue
				}
			}
		}
		r.selDirty[proc] = true
		r.delta.ArtifactMisses++
		r.store.MarkDirty(1)
	}
	if err := cp.SelectBaseInto(cc.Ctx, sel, cc.Opt.CP, r.selClean); err != nil {
		return false, err
	}
	return len(r.selDirty) == 0, nil
}

// newProp replaces runNewProp, propagating §4.1 only through dirty
// procedures (thawed selections are already post-propagation).
func (r *incrRun) newProp() (bool, error) {
	if err := cp.PropagateNewArraysPartial(r.cc.Ctx, r.cc.Sel, r.cc.Opt.CP, r.selClean); err != nil {
		return false, err
	}
	return len(r.selDirty) == 0, nil
}

// localize mirrors newProp for §4.2.
func (r *incrRun) localize() (bool, error) {
	if !r.cc.Opt.CP.Localize {
		return false, nil
	}
	if err := cp.PropagateLocalizePartial(r.cc.Ctx, r.cc.Sel, r.cc.Opt.CP, r.selClean); err != nil {
		return false, err
	}
	return len(r.selDirty) == 0, nil
}

// interproc replaces runInterproc: dirty procedures run §6 normally;
// clean ones republish their thawed entry CPs into ctx.EntryCPs at
// their bottom-up turn, so dirty callers translate against them.
func (r *incrRun) interproc() (bool, error) {
	if err := cp.SelectInterprocPartial(r.cc.Ctx, r.cc.Sel, r.cc.Opt.CP, r.selClean); err != nil {
		return false, err
	}
	return len(r.selDirty) == 0, nil
}

// freezeSelArtifacts stores the finished selection state of the
// procedures selected this run.  It runs exactly once, just before the
// first of loopdist/reductions — the last moment the pre-distribution
// statement walk (the relocation anchor shared with the deps artifact)
// is computable.
func (r *incrRun) freezeSelArtifacts() {
	if r.cc.Sel == nil || r.fps == nil {
		return
	}
	for pi, proc := range r.selOrder {
		if !r.selDirty[proc] {
			continue
		}
		fz := freezeSel(proc, pi, r.cc.Sel)
		r.store.Put(artifactKey(artifactSel, r.fps.Env[proc]), fz, approxSize(fz))
	}
}

// commPlan replaces runCommPlan: clean procedures thaw their finished
// (post-elimination) plans; dirty ones build events in parallel.
func (r *incrRun) commPlan() (bool, error) {
	cc := r.cc
	cc.Comm = map[string]*comm.Analysis{}
	var fresh []int
	for i, proc := range cc.IR.Procs {
		if !r.dirty[proc] {
			key := artifactKey(artifactComm, r.fps.Env[proc])
			if v, ok := r.store.Get(key); ok {
				if a, err := thawComm(proc, v.(*frozenComm)); err == nil {
					cc.Comm[proc.Name] = a
					r.delta.ArtifactHits++
					continue
				}
			}
		}
		fresh = append(fresh, i)
		r.commFresh[proc] = true
	}
	results := make([]*comm.Analysis, len(fresh))
	forEach(len(fresh), 0, func(k int) error {
		proc := cc.IR.Procs[fresh[k]]
		results[k] = comm.BuildEvents(cc.Ctx, proc, cc.Sel)
		return nil
	})
	for k, i := range fresh {
		cc.Comm[cc.IR.Procs[i].Name] = results[k]
		r.delta.ArtifactMisses++
		r.store.MarkDirty(1)
	}
	return len(fresh) == 0, nil
}

// availability applies §7 elimination to freshly-built plans only: a
// thawed plan is already post-elimination and carries no dependence
// graphs to re-derive proofs from.
func (r *incrRun) availability() (bool, error) {
	cc := r.cc
	if !cc.Opt.Comm.Availability {
		return false, nil
	}
	n := 0
	for _, proc := range cc.IR.Procs {
		if r.commFresh[proc] {
			comm.ApplyAvailability(cc.Ctx, cc.Sel, cc.Comm[proc.Name])
			n++
		}
	}
	return n == 0, nil
}

// writebackRed mirrors availability for write-back redundancy.
func (r *incrRun) writebackRed() (bool, error) {
	cc := r.cc
	if !cc.Opt.Comm.RedundantWriteback {
		return false, nil
	}
	n := 0
	for _, proc := range cc.IR.Procs {
		if r.commFresh[proc] {
			comm.ApplyWritebackElim(cc.Ctx, cc.Sel, cc.Comm[proc.Name])
			n++
		}
	}
	return n == 0, nil
}

// lower runs the cold validation, then freezes the now-final (post-
// elimination) communication plans of the procedures built this run.
func (r *incrRun) lower() (bool, error) {
	cc := r.cc
	if err := runLower(cc); err != nil {
		return false, err
	}
	for _, proc := range cc.IR.Procs {
		if !r.commFresh[proc] {
			continue
		}
		if fz, err := freezeComm(proc, cc.Comm[proc.Name]); err == nil {
			r.store.Put(artifactKey(artifactComm, r.fps.Env[proc]), fz, approxSize(fz))
		}
	}
	return false, nil
}

// verify replaces runVerify: clean procedures thaw their report
// fragments (with statement IDs relocated onto the fresh bodies); dirty
// ones are verified in parallel; the merge in procedure order makes the
// final report identical to a cold verify.Run.
func (r *incrRun) verify() (bool, error) {
	cc := r.cc
	reductions := map[int]bool{}
	for _, plans := range cc.Reductions {
		for _, red := range plans {
			reductions[red.Stmt.ID] = true
		}
	}
	in := verify.Input{
		IR: cc.IR, Ctx: cc.Ctx, Sel: cc.Sel, Comm: cc.Comm,
		Reductions: reductions,
		Backend:    canonicalBackend(cc.Opt.Backend),
	}
	frags := make([]*verify.Report, len(cc.IR.Procs))
	var fresh []int
	for i, proc := range cc.IR.Procs {
		if !r.dirty[proc] && !r.commFresh[proc] {
			key := artifactKey(artifactVerify, r.fps.Env[proc])
			if v, ok := r.store.Get(key); ok {
				if frag, err := thawVerify(proc, v.(*frozenVerify)); err == nil {
					frags[i] = frag
					r.delta.ArtifactHits++
					continue
				}
			}
		}
		fresh = append(fresh, i)
	}
	err := forEach(len(fresh), 0, func(k int) error {
		proc := cc.IR.Procs[fresh[k]]
		frag, err := verify.RunProc(in, proc)
		if err != nil {
			return err
		}
		frags[fresh[k]] = frag
		return nil
	})
	if err != nil {
		return false, err
	}
	for _, i := range fresh {
		proc := cc.IR.Procs[i]
		r.delta.ArtifactMisses++
		r.store.MarkDirty(1)
		fz := freezeVerify(proc, frags[i])
		r.store.Put(artifactKey(artifactVerify, r.fps.Env[proc]), fz, approxSize(fz))
	}
	rep := &verify.Report{}
	for _, frag := range frags {
		verify.Merge(rep, frag)
	}
	cc.Verify = rep
	return len(fresh) == 0, nil
}

// analyze replaces runAnalyze the same way verify replaces runVerify:
// clean procedures thaw their summary-plus-diagnostics fragments with
// statement IDs relocated onto the fresh bodies, dirty ones are
// analyzed in parallel, and the merge in procedure order is identical
// to a cold analysis.Run.
func (r *incrRun) analyze() (bool, error) {
	cc := r.cc
	in := buildAnalysisInput(cc)
	frags := make([]*analysis.Result, len(cc.IR.Procs))
	var fresh []int
	for i, proc := range cc.IR.Procs {
		if !r.dirty[proc] && !r.commFresh[proc] {
			key := artifactKey(artifactAnalyze, r.fps.Env[proc])
			if v, ok := r.store.Get(key); ok {
				fz := v.(*frozenAnalyze)
				if frag, err := thawAnalyze(proc, fz); err == nil {
					frags[i] = frag
					// Seed the clean procedure's interface so dirty
					// callers resolve their calls from the cache.
					in.SeedInterface(proc.Name, fz.Iface)
					r.delta.ArtifactHits++
					continue
				}
			}
		}
		fresh = append(fresh, i)
	}
	err := forEach(len(fresh), 0, func(k int) error {
		proc := cc.IR.Procs[fresh[k]]
		frag, err := analysis.RunProc(in, proc)
		if err != nil {
			return err
		}
		frags[fresh[k]] = frag
		return nil
	})
	if err != nil {
		return false, err
	}
	for _, i := range fresh {
		proc := cc.IR.Procs[i]
		r.delta.ArtifactMisses++
		r.store.MarkDirty(1)
		fz, err := freezeAnalyze(in, proc, frags[i])
		if err != nil {
			return false, err
		}
		r.store.Put(artifactKey(artifactAnalyze, r.fps.Env[proc]), fz, approxSize(fz))
	}
	res := &analysis.Result{}
	for _, frag := range frags {
		analysis.Merge(res, frag)
	}
	cc.Analysis = res
	return len(fresh) == 0, nil
}
