package passes

import (
	"fmt"
	"strings"
	"time"

	"dhpf/internal/comm"
)

// Stat is one pass's instrumentation record.
type Stat struct {
	Name string
	Wall time.Duration
	// Summary is the pass's one-line decision digest ("14 stmt CPs, 1
	// pair marked"); Notes are its individual decisions, in the order
	// they were made.
	Summary string
	Notes   []string
	// With Options.Instrument: the fully-vectorized communication plan
	// the program would need as of the end of this pass.  Measured is
	// false for front-end passes that run before a CP selection exists
	// (no plan can be probed yet); HasDelta once a previous pass was also
	// measured, making DeltaBytes = Bytes − previous pass's Bytes.
	Measured   bool
	Msgs       int64
	Bytes      int64
	HasDelta   bool
	DeltaBytes int64
	// Cached marks a pass whose per-procedure work was satisfied entirely
	// from the artifact store by an incremental compile (no procedure was
	// re-analyzed).  Always false on the cold pipeline.
	Cached bool
}

// probe is one communication-volume measurement.
type probe struct {
	msgs, bytes int64
}

// measureComm computes the whole-program fully-vectorized transfer plan
// under the current selection: the pipeline's "communication volume so
// far".  Before the communication passes run, events are built
// ephemerally from the current CPs; afterwards the pipeline's own plan
// (with its eliminations) is measured.  Returns ok=false until a CP
// selection exists.
func measureComm(cc *CompileContext) (probe, bool) {
	if cc.Ctx == nil || cc.Sel == nil {
		return probe{}, false
	}
	var p probe
	for _, proc := range cc.IR.Procs {
		a := cc.Comm[proc.Name]
		if a == nil {
			a = comm.BuildEvents(cc.Ctx, proc, cc.Sel)
		}
		live := a.Live()
		for _, t := range comm.ReadTransfers(cc.Ctx, proc, cc.Sel, live) {
			p.msgs++
			p.bytes += t.Bytes()
		}
		for _, t := range comm.WriteBackTransfers(cc.Ctx, proc, cc.Sel, live) {
			p.msgs++
			p.bytes += t.Bytes()
		}
	}
	return p, true
}

// StatsTable renders the per-pass records as the table cmd/dhpfc
// -explain prints: pass name, wall time, message count, bytes, byte
// delta vs the previous measured pass, and the decision summary.
// Unmeasured cells print "-".
func StatsTable(stats []Stat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %8s %12s %12s  %s\n", "pass", "time", "msgs", "bytes", "Δbytes", "decisions")
	for _, s := range stats {
		msgs, bytes, delta := "-", "-", "-"
		if s.Measured {
			msgs = fmt.Sprintf("%d", s.Msgs)
			bytes = fmt.Sprintf("%d", s.Bytes)
			if s.HasDelta {
				delta = fmt.Sprintf("%+d", s.DeltaBytes)
			}
		}
		wall := fmtWall(s.Wall)
		if s.Cached {
			wall = "cached"
		}
		fmt.Fprintf(&b, "%-14s %10s %8s %12s %12s  %s\n",
			s.Name, wall, msgs, bytes, delta, s.Summary)
	}
	return b.String()
}

func fmtWall(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
