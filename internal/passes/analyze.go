package passes

import (
	"fmt"

	"dhpf/internal/analysis"
)

// buildAnalysisInput assembles the static-analysis input from the
// compile context — the same facts the verifier reads, plus the grain
// and backend the cost oracle prices.
func buildAnalysisInput(cc *CompileContext) *analysis.Input {
	reds := map[string][]analysis.Reduction{}
	for name, plans := range cc.Reductions {
		for _, r := range plans {
			reds[name] = append(reds[name], analysis.Reduction{Loop: r.Loop, Stmt: r.Stmt, Var: r.Var, Op: r.Op})
		}
	}
	return &analysis.Input{
		IR: cc.IR, Ctx: cc.Ctx, Sel: cc.Sel, Comm: cc.Comm,
		Reductions:    reds,
		Grid:          cc.Grid,
		Backend:       canonicalBackend(cc.Opt.Backend),
		PipelineGrain: cc.Opt.PipelineGrain,
	}
}

// runAnalyze executes the static-analysis pass: symbolic loop summaries
// and distributed-array dataflow over the post-pipeline facts.  The
// result is stored on the context; Predict (the cost oracle) is run on
// demand by the surfaces, not here, because its output depends on
// nothing the pipeline caches.
func runAnalyze(cc *CompileContext) error {
	res, err := analysis.Run(buildAnalysisInput(cc))
	if err != nil {
		return err
	}
	cc.Analysis = res
	return nil
}

// checkAnalyze is deliberately lenient, unlike checkVerify: dataflow
// ERROR diagnostics describe properties of the *program* (reading unset
// distributed storage), not of the compiler, so they must not fail the
// compile — the program still executes deterministically.  The corpus
// cleanliness gate lives in `dhpfc -analyze` (nonzero exit on ERROR),
// which CI runs over testdata.
func checkAnalyze(cc *CompileContext) error {
	if cc.Analysis == nil {
		return fmt.Errorf("no analysis result produced")
	}
	if len(cc.Analysis.Procs) != len(cc.IR.Procs) {
		return fmt.Errorf("analysis covers %d of %d procedures", len(cc.Analysis.Procs), len(cc.IR.Procs))
	}
	return nil
}
