package passes

import (
	"fmt"

	"dhpf/internal/verify"
)

// runVerify executes the translation-validation pass: the verify package
// independently re-proves the four safety theorems (coverage,
// communication completeness, writeback soundness, pipeline legality)
// over the analyses the pipeline just produced, and the report is stored
// on the context.  The pass is optional (Options.Disable "verify") but on
// by default — a pipeline bug should fail the compile, not the run.
func runVerify(cc *CompileContext) error {
	reductions := map[int]bool{}
	for _, plans := range cc.Reductions {
		for _, r := range plans {
			reductions[r.Stmt.ID] = true
		}
	}
	rep, err := verify.Run(verify.Input{
		IR: cc.IR, Ctx: cc.Ctx, Sel: cc.Sel, Comm: cc.Comm,
		Reductions: reductions,
		Backend:    canonicalBackend(cc.Opt.Backend),
	})
	if err != nil {
		return err
	}
	cc.Verify = rep
	return nil
}

// checkVerify is the pass invariant: a program that fails its own safety
// proof must not compile.  The first error diagnostics are inlined so the
// failure localizes the broken pass without re-running anything.
func checkVerify(cc *CompileContext) error {
	if cc.Verify == nil {
		return fmt.Errorf("no verification report produced")
	}
	errs := cc.Verify.Errors()
	if len(errs) == 0 {
		return nil
	}
	msg := fmt.Sprintf("program fails %d safety obligations", len(errs))
	for i, d := range errs {
		if i == 3 {
			msg += fmt.Sprintf("; … %d more", len(errs)-i)
			break
		}
		msg += "; " + d.String()
	}
	return fmt.Errorf("%s", msg)
}
