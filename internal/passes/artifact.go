package passes

import (
	"fmt"
	"strconv"
	"strings"

	"dhpf/internal/analysis"
	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/dep"
	"dhpf/internal/ir"
	"dhpf/internal/verify"
)

// Artifact kinds stored per (procedure, environment-fingerprint) in the
// cache.ArtifactStore.  Everything between these checkpoints — loop
// distribution, reduction recognition — is cheap and deterministic given
// the thawed inputs, so it is always re-run rather than cached.
const (
	artifactDeps   = "deps"   // dependence graph, frozen on the parse-stage body
	artifactSel    = "sel"    // per-procedure CP selection, frozen post-§6 on the pre-distribution body
	artifactComm   = "comm"   // communication plan, frozen post-distribution and post-elimination
	artifactVerify = "verify" // per-procedure verification fragment
	// artifactAnalyze is the static-analysis tier: one procedure's
	// summary-plus-diagnostics fragment, frozen on the post-distribution
	// body like verify's.
	artifactAnalyze = "analyze"
	// artifactRawUnit is the raw-text tier: it maps the hash of a
	// procedure's raw source chunk to its canonical unit hash, so an
	// unedited procedure skips the canonical re-rendering entirely.
	artifactRawUnit = "rawunit"
	// artifactAST is the front-end tier: it maps the hash of (header,
	// raw source chunk) to the pristine parsed Procedure, so an unedited
	// procedure skips re-parsing — it is deep-cloned into the program and
	// renumbered instead.
	artifactAST = "ast"
	// artifactCalls maps a procedure's unit hash to its direct-callee
	// name list, so environment fingerprinting skips the body walk for
	// unedited procedures.
	artifactCalls = "calls"
)

// refSel names one array reference of an assignment positionally, so a
// frozen artifact can rebind it to the structurally-identical assignment
// of a later compile whose AST pointers differ.
type refSel struct {
	Kind int    // 0 = LHS, 1 = RHS ref by index, 2 = synthetic scalar read by name
	Idx  int    // valid for Kind 1
	Name string // valid for Kind 2
}

const (
	selLHS = iota
	selRHS
	selScalar
)

// selectRef computes the selector for a reference of assignment a.  The
// synthetic case covers the rank-0 refs dep.Analyze fabricates for scalar
// reads: they match no AST pointer, and every downstream consumer compares
// them by name/value, so the name alone reconstructs them faithfully.
func selectRef(a *ir.Assign, ref *ir.ArrayRef) (refSel, error) {
	if ref == a.LHS {
		return refSel{Kind: selLHS}, nil
	}
	for i, r := range ir.Refs(a.RHS) {
		if r == ref {
			return refSel{Kind: selRHS, Idx: i}, nil
		}
	}
	if len(ref.Subs) == 0 {
		return refSel{Kind: selScalar, Name: ref.Name}, nil
	}
	return refSel{}, fmt.Errorf("reference %v not locatable in stmt %d", ref, a.ID)
}

// refCache memoizes ir.Refs per assignment, so thawing many frozen
// records against the same statement (a dependence graph routinely holds
// several dependences per statement pair) walks each RHS only once.
type refCache map[*ir.Assign][]*ir.ArrayRef

// resolveRef rebinds a selector against a fresh assignment.
func (c refCache) resolveRef(a *ir.Assign, s refSel) (*ir.ArrayRef, error) {
	switch s.Kind {
	case selLHS:
		return a.LHS, nil
	case selRHS:
		refs, ok := c[a]
		if !ok {
			refs = ir.Refs(a.RHS)
			c[a] = refs
		}
		if s.Idx < 0 || s.Idx >= len(refs) {
			return nil, fmt.Errorf("RHS ref %d out of range in stmt %d", s.Idx, a.ID)
		}
		return refs[s.Idx], nil
	case selScalar:
		return &ir.ArrayRef{Name: s.Name}, nil
	}
	return nil, fmt.Errorf("unknown ref selector kind %d", s.Kind)
}

// --- dependence artifacts ----------------------------------------------------

type frozenDep struct {
	Kind     dep.Kind
	Src, Dst int // assignment rank in ir.Assignments order
	SrcRef   refSel
	DstRef   refSel
	Distance []dep.Dist
	Level    int
}

type frozenDeps struct {
	Deps []frozenDep
}

// freezeDeps captures a procedure's dependence graph against the ranks of
// its parse-stage assignments.  It must run before loop distribution,
// which rewrites references in place.
func freezeDeps(proc *ir.Procedure, deps []*dep.Dependence) (*frozenDeps, error) {
	rank := map[*ir.Assign]int{}
	for i, a := range ir.Assignments(proc.Body) {
		rank[a.Assign] = i
	}
	out := &frozenDeps{Deps: make([]frozenDep, 0, len(deps))}
	for _, d := range deps {
		si, ok := rank[d.Src]
		if !ok {
			return nil, fmt.Errorf("dep source stmt %d not in body", d.Src.ID)
		}
		di, ok := rank[d.Dst]
		if !ok {
			return nil, fmt.Errorf("dep dest stmt %d not in body", d.Dst.ID)
		}
		sr, err := selectRef(d.Src, d.SrcRef)
		if err != nil {
			return nil, err
		}
		dr, err := selectRef(d.Dst, d.DstRef)
		if err != nil {
			return nil, err
		}
		out.Deps = append(out.Deps, frozenDep{
			Kind: d.Kind, Src: si, Dst: di, SrcRef: sr, DstRef: dr,
			Distance: append([]dep.Dist(nil), d.Distance...), Level: d.Level,
		})
	}
	return out, nil
}

// thawDeps rebinds a frozen dependence graph to a fresh parse of the same
// procedure text.  CommonNest is recomputed exactly as dep.Analyze's
// makeDep computes it; the dependence order of the frozen list is
// preserved, since note and event generation iterate it.
func thawDeps(proc *ir.Procedure, fz *frozenDeps) ([]*dep.Dependence, error) {
	asn := ir.Assignments(proc.Body)
	rc := refCache{}
	// One bulk allocation for the thawed graph; Distance aliases the
	// frozen slice — every consumer reads it, none mutates.
	bulk := make([]dep.Dependence, len(fz.Deps))
	out := make([]*dep.Dependence, 0, len(fz.Deps))
	for i, f := range fz.Deps {
		if f.Src < 0 || f.Src >= len(asn) || f.Dst < 0 || f.Dst >= len(asn) {
			return nil, fmt.Errorf("dep stmt rank out of range (%d, %d of %d)", f.Src, f.Dst, len(asn))
		}
		src, dst := asn[f.Src], asn[f.Dst]
		sr, err := rc.resolveRef(src.Assign, f.SrcRef)
		if err != nil {
			return nil, err
		}
		dr, err := rc.resolveRef(dst.Assign, f.DstRef)
		if err != nil {
			return nil, err
		}
		bulk[i] = dep.Dependence{
			Kind: f.Kind, Src: src.Assign, Dst: dst.Assign, SrcRef: sr, DstRef: dr,
			CommonNest: ir.CommonPrefix(src.Nest, dst.Nest),
			Distance:   f.Distance, Level: f.Level,
		}
		out = append(out, &bulk[i])
	}
	return out, nil
}

// --- statement-ID relocation -------------------------------------------------

// relocateText scans for the "stmt N" phrasing every pass uses when it
// writes a statement into a note, reason or diagnostic.

// walkIDs returns the statement IDs of every statement of a body, in full
// pre-order.  Two compiles of identical procedure text produce
// structurally identical bodies, so pairing the walks positionally gives
// the ID translation between them.
func walkIDs(body []ir.Stmt) []int {
	var ids []int
	ir.Walk(body, func(s ir.Stmt, _ []*ir.Loop) bool {
		ids = append(ids, s.StmtID())
		return true
	})
	return ids
}

// idMap pairs a frozen walk against a fresh one.  A length mismatch means
// the bodies are not isomorphic and the artifact cannot be relocated.
func idMap(old, fresh []int) (map[int]int, error) {
	if len(old) != len(fresh) {
		return nil, fmt.Errorf("statement walk mismatch: %d frozen vs %d fresh", len(old), len(fresh))
	}
	m := make(map[int]int, len(old))
	for i, o := range old {
		if prev, ok := m[o]; ok && prev != fresh[i] {
			return nil, fmt.Errorf("ambiguous relocation of stmt %d", o)
		}
		m[o] = fresh[i]
	}
	return m, nil
}

// relocateText rewrites every "stmt N" in a frozen text through the ID
// map.  An unmapped ID refuses the thaw — better a recompute than a
// report pointing at the wrong statement.  The common warm case — an
// edit that preserves statement counts, so every ID maps to itself —
// returns the input string without allocating.
func relocateText(text string, m map[int]int) (string, error) {
	const tag = "stmt "
	pos := strings.Index(text, tag)
	if pos < 0 {
		return text, nil
	}
	var sb strings.Builder
	changed := false
	last := 0
	for pos >= 0 {
		start := pos + len(tag)
		end := start
		for end < len(text) && text[end] >= '0' && text[end] <= '9' {
			end++
		}
		if end > start {
			n, _ := strconv.Atoi(text[start:end])
			nn, ok := m[n]
			if !ok {
				return "", fmt.Errorf("frozen text names unknown stmt %d", n)
			}
			if nn != n {
				sb.WriteString(text[last:start])
				sb.WriteString(strconv.Itoa(nn))
				last = end
				changed = true
			}
		}
		next := strings.Index(text[end:], tag)
		if next < 0 {
			break
		}
		pos = end + next
	}
	if !changed {
		return text, nil
	}
	sb.WriteString(text[last:])
	return sb.String(), nil
}

// --- selection artifacts -----------------------------------------------------

type frozenSel struct {
	Sel    *cp.ProcSelection
	OldIDs []int // full pre-order statement walk at freeze time (pre-distribution)
}

// freezeSel captures a procedure's completed selection state (post-
// propagation, post-§6) against the pre-distribution body.  pi is the
// procedure's bottom-up call-graph index at freeze time, used to pick
// out its decision notes.
func freezeSel(proc *ir.Procedure, pi int, sel *cp.Selection) *frozenSel {
	return &frozenSel{Sel: sel.ExtractProc(proc, pi), OldIDs: walkIDs(proc.Body)}
}

// thawSel rebinds a frozen selection slice onto a fresh parse of the
// same procedure text — relocating the statement IDs keying the CPs,
// naming the marked pairs and embedded in note texts — and installs it
// under the procedure's current bottom-up index.
func thawSel(proc *ir.Procedure, pi int, sel *cp.Selection, fz *frozenSel) error {
	m, err := idMap(fz.OldIDs, walkIDs(proc.Body))
	if err != nil {
		return err
	}
	ps := &cp.ProcSelection{
		CPs:   make(map[int]*cp.CP, len(fz.Sel.CPs)),
		Entry: fz.Sel.Entry, HasEntry: fz.Sel.HasEntry,
	}
	for id, c := range fz.Sel.CPs {
		nid, ok := m[id]
		if !ok {
			return fmt.Errorf("frozen CP keyed by unknown stmt %d", id)
		}
		ps.CPs[nid] = c
	}
	for _, pair := range fz.Sel.Marked {
		a, oka := m[pair[0]]
		b, okb := m[pair[1]]
		if !oka || !okb {
			return fmt.Errorf("frozen marked pair (%d,%d) not relocatable", pair[0], pair[1])
		}
		ps.Marked = append(ps.Marked, [2]int{a, b})
	}
	for _, n := range fz.Sel.Notes {
		if n.Text, err = relocateText(n.Text, m); err != nil {
			return err
		}
		ps.Notes = append(ps.Notes, n)
	}
	return sel.InstallProc(proc, pi, ps)
}

// --- communication artifacts -------------------------------------------------

type frozenEvent struct {
	Kind       comm.Kind
	Stmt       int // assignment rank in the post-distribution body
	Ref        refSel
	Depth      int
	Pipelined  bool
	Eliminated bool
	Reason     string
}

type frozenComm struct {
	Events []frozenEvent
	Notes  []string
	OldIDs []int // full pre-order statement walk at freeze time
}

// freezeComm captures a procedure's finished communication plan (events
// post-elimination, notes rendered) against the post-distribution body.
func freezeComm(proc *ir.Procedure, a *comm.Analysis) (*frozenComm, error) {
	rank := map[*ir.Assign]int{}
	for i, ai := range ir.Assignments(proc.Body) {
		rank[ai.Assign] = i
	}
	out := &frozenComm{
		Events: make([]frozenEvent, 0, len(a.Events)),
		Notes:  append([]string(nil), a.Notes...),
		OldIDs: walkIDs(proc.Body),
	}
	for _, e := range a.Events {
		r, ok := rank[e.Stmt]
		if !ok {
			return nil, fmt.Errorf("event stmt %d not in body", e.Stmt.ID)
		}
		sel, err := selectRef(e.Stmt, e.Ref)
		if err != nil {
			return nil, err
		}
		out.Events = append(out.Events, frozenEvent{
			Kind: e.Kind, Stmt: r, Ref: sel, Depth: e.Depth,
			Pipelined: e.Pipelined, Eliminated: e.Eliminated, Reason: e.Reason,
		})
	}
	return out, nil
}

// thawComm rebinds a frozen plan to a fresh post-distribution body,
// relocating the statement IDs embedded in reasons and notes.  The
// restored analysis carries no dependence graphs; the elimination phases
// must not run on it (it is already post-elimination).
func thawComm(proc *ir.Procedure, fz *frozenComm) (*comm.Analysis, error) {
	m, err := idMap(fz.OldIDs, walkIDs(proc.Body))
	if err != nil {
		return nil, err
	}
	asn := ir.Assignments(proc.Body)
	rc := refCache{}
	events := make([]*comm.Event, 0, len(fz.Events))
	for _, f := range fz.Events {
		if f.Stmt < 0 || f.Stmt >= len(asn) {
			return nil, fmt.Errorf("event stmt rank %d out of range", f.Stmt)
		}
		a := asn[f.Stmt]
		ref, err := rc.resolveRef(a.Assign, f.Ref)
		if err != nil {
			return nil, err
		}
		if f.Depth < 0 || f.Depth > len(a.Nest) {
			return nil, fmt.Errorf("event depth %d outside nest of %d", f.Depth, len(a.Nest))
		}
		reason, err := relocateText(f.Reason, m)
		if err != nil {
			return nil, err
		}
		e := &comm.Event{
			Kind: f.Kind, Stmt: a.Assign, Ref: ref, Nest: a.Nest,
			Depth: f.Depth, Pipelined: f.Pipelined,
			Eliminated: f.Eliminated, Reason: reason,
		}
		if f.Pipelined {
			if f.Depth < 1 {
				return nil, fmt.Errorf("pipelined event at depth %d has no carrying loop", f.Depth)
			}
			e.CarriedBy = a.Nest[f.Depth-1]
		}
		events = append(events, e)
	}
	notes := make([]string, 0, len(fz.Notes))
	for _, n := range fz.Notes {
		rn, err := relocateText(n, m)
		if err != nil {
			return nil, err
		}
		notes = append(notes, rn)
	}
	return comm.Restore(proc, events, notes), nil
}

// --- verification artifacts --------------------------------------------------

type frozenVerify struct {
	Diagnostics []verify.Diagnostic
	Stmts       int
	Events      int
	Ranks       int
	OldIDs      []int
}

// freezeVerify captures a per-procedure verification fragment against the
// post-distribution body.
func freezeVerify(proc *ir.Procedure, frag *verify.Report) *frozenVerify {
	return &frozenVerify{
		Diagnostics: append([]verify.Diagnostic(nil), frag.Diagnostics...),
		Stmts:       frag.Stmts,
		Events:      frag.Events,
		Ranks:       frag.Ranks,
		OldIDs:      walkIDs(proc.Body),
	}
}

// thawVerify relocates a frozen fragment's statement IDs (both the Stmt
// field and any statement named inside Why) onto a fresh body.
func thawVerify(proc *ir.Procedure, fz *frozenVerify) (*verify.Report, error) {
	m, err := idMap(fz.OldIDs, walkIDs(proc.Body))
	if err != nil {
		return nil, err
	}
	diags := make([]verify.Diagnostic, 0, len(fz.Diagnostics))
	for _, d := range fz.Diagnostics {
		if d.Stmt >= 0 {
			nn, ok := m[d.Stmt]
			if !ok {
				return nil, fmt.Errorf("diagnostic names unknown stmt %d", d.Stmt)
			}
			d.Stmt = nn
		}
		if d.Why, err = relocateText(d.Why, m); err != nil {
			return nil, err
		}
		diags = append(diags, d)
	}
	return &verify.Report{
		Diagnostics: diags, Stmts: fz.Stmts, Events: fz.Events, Ranks: fz.Ranks,
	}, nil
}

// --- static-analysis artifacts -----------------------------------------------

type frozenAnalyze struct {
	Proc        analysis.ProcSummary
	Diagnostics []verify.Diagnostic
	// Iface caches the procedure's interface footprints so a dirty
	// caller's analysis can resolve calls to this (clean) procedure
	// without recomputing its phase footprints.  The sets carry no
	// statement IDs, so they need no thaw-time relocation.
	Iface  analysis.ProcIface
	OldIDs []int
}

// freezeAnalyze captures one procedure's static-analysis fragment (a
// single-proc analysis.Result) against the post-distribution body.
func freezeAnalyze(in *analysis.Input, proc *ir.Procedure, frag *analysis.Result) (*frozenAnalyze, error) {
	if len(frag.Procs) != 1 {
		return nil, fmt.Errorf("analysis fragment covers %d procedures, want 1", len(frag.Procs))
	}
	return &frozenAnalyze{
		Proc:        frag.Procs[0],
		Diagnostics: append([]verify.Diagnostic(nil), frag.Diagnostics...),
		Iface:       in.Interface(proc),
		OldIDs:      walkIDs(proc.Body),
	}, nil
}

// thawAnalyze relocates a frozen fragment's statement IDs — phase and
// loop anchors plus the diagnostics' Stmt fields and any "stmt N"
// phrasing inside Why — onto a fresh body.
func thawAnalyze(proc *ir.Procedure, fz *frozenAnalyze) (*analysis.Result, error) {
	m, err := idMap(fz.OldIDs, walkIDs(proc.Body))
	if err != nil {
		return nil, err
	}
	ps := fz.Proc
	ps.Phases = append([]analysis.PhaseSummary(nil), ps.Phases...)
	for i := range ps.Phases {
		ph := &ps.Phases[i]
		nn, ok := m[ph.Stmt]
		if !ok {
			return nil, fmt.Errorf("phase names unknown stmt %d", ph.Stmt)
		}
		ph.Stmt = nn
		ph.Loops = append([]analysis.LoopSummary(nil), ph.Loops...)
		for k := range ph.Loops {
			ln, ok := m[ph.Loops[k].Stmt]
			if !ok {
				return nil, fmt.Errorf("loop summary names unknown stmt %d", ph.Loops[k].Stmt)
			}
			ph.Loops[k].Stmt = ln
		}
	}
	diags := make([]verify.Diagnostic, 0, len(fz.Diagnostics))
	for _, d := range fz.Diagnostics {
		if d.Stmt >= 0 {
			nn, ok := m[d.Stmt]
			if !ok {
				return nil, fmt.Errorf("diagnostic names unknown stmt %d", d.Stmt)
			}
			d.Stmt = nn
		}
		if d.Why, err = relocateText(d.Why, m); err != nil {
			return nil, err
		}
		diags = append(diags, d)
	}
	return &analysis.Result{Procs: []analysis.ProcSummary{ps}, Diagnostics: diags}, nil
}

// --- size accounting ---------------------------------------------------------

// approxSize estimates an artifact's memory footprint for the store's
// byte budget.  Exactness is unnecessary; the budget only bounds growth.
func approxSize(v any) int64 {
	switch a := v.(type) {
	case *frozenDeps:
		return 64 + int64(len(a.Deps))*96
	case *frozenSel:
		n := int64(64 + len(a.OldIDs)*8 + len(a.Sel.Marked)*16)
		for _, c := range a.Sel.CPs {
			if c != nil {
				n += 32 + int64(len(c.Terms))*128
			}
		}
		for _, note := range a.Sel.Notes {
			n += int64(len(note.Text)) + 48
		}
		return n
	case *frozenComm:
		n := int64(64 + len(a.Events)*96 + len(a.OldIDs)*8)
		for _, s := range a.Notes {
			n += int64(len(s)) + 24
		}
		return n
	case *frozenVerify:
		n := int64(64 + len(a.OldIDs)*8)
		for _, d := range a.Diagnostics {
			n += int64(len(d.Check)+len(d.Proc)+len(d.Ref)+len(d.Set)+len(d.Why)) + 96
		}
		return n
	case *frozenAnalyze:
		n := int64(64 + len(a.OldIDs)*8 + len(a.Proc.Proc))
		for _, ph := range a.Proc.Phases {
			n += 96 + int64(len(ph.Loops))*96 + int64(len(ph.PerRankComm))*8
			for _, f := range ph.Reads {
				n += int64(len(f.Array)+len(f.Set)) + 32
			}
			for _, f := range ph.Writes {
				n += int64(len(f.Array)+len(f.Set)) + 32
			}
		}
		for _, d := range a.Diagnostics {
			n += int64(len(d.Check)+len(d.Proc)+len(d.Ref)+len(d.Set)+len(d.Why)) + 96
		}
		return n
	}
	return 256
}
