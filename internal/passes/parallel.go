package passes

import (
	"runtime"
	"sync"
)

// forEach runs fn(i) for i in [0, n) on a bounded pool of workers and
// returns the first error (by index order, so failures are deterministic
// regardless of scheduling).  Each fn writes only its own slot of the
// caller's result slices, so no synchronization is needed beyond the
// pool itself.
func forEach(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
