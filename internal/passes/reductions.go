package passes

import (
	"dhpf/internal/cp"
	"dhpf/internal/dep"
	"dhpf/internal/ir"
)

// ReductionPlan is one recognized parallel reduction.
type ReductionPlan struct {
	Loop *ir.Loop   // finalize at this loop's exit
	Stmt *ir.Assign // the accumulation statement
	Var  string
	Op   byte // '+' sum, '<' min, '>' max
}

// planReductions recognizes scalar reductions in each outermost loop:
// statements of the shape s = s ⊕ e whose scalar is touched nowhere else
// inside the loop and whose CP partitions the iterations.  Supported ⊕
// (sum, min, max) become ReductionPlans — each rank accumulates its
// partial and the loop exit combines them collectively.  A recognized
// reduction with an unsupported operator (product) is forced to
// replicated execution instead, preserving correctness.
func planReductions(ctx *cp.Context, proc *ir.Procedure, sel *cp.Selection) []ReductionPlan {
	var out []ReductionPlan
	for _, s := range proc.Body {
		l, ok := s.(*ir.Loop)
		if !ok {
			continue
		}
		reds := dep.FindReductions([]ir.Stmt{l})
		for _, r := range reds {
			if !scalarOnlyInReduction(l, r) {
				continue
			}
			c := sel.CPOf(r.Stmt.ID)
			if c.Replicated() {
				continue // every rank runs every iteration: already global
			}
			switch r.Op {
			case '+', '<', '>':
				out = append(out, ReductionPlan{Loop: l, Stmt: r.Stmt, Var: r.Var, Op: r.Op})
			default:
				// Unsupported combine: replicate the accumulation.
				sel.CPs[r.Stmt.ID] = &cp.CP{}
			}
		}
	}
	return out
}

// scalarOnlyInReduction checks that the reduction variable is read and
// written only by the reduction statement inside the loop.
func scalarOnlyInReduction(l *ir.Loop, r dep.Reduction) bool {
	ok := true
	ir.Walk([]ir.Stmt{l}, func(s ir.Stmt, _ []*ir.Loop) bool {
		a, isA := s.(*ir.Assign)
		if !isA || a == r.Stmt {
			return true
		}
		if a.LHS.Name == r.Var && len(a.LHS.Subs) == 0 {
			ok = false
			return false
		}
		for _, n := range ir.ScalarReads(a.RHS) {
			if n == r.Var {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}
