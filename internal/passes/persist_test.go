package passes

import (
	"path/filepath"
	"reflect"
	"testing"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/dep"
	"dhpf/internal/ir"
	"dhpf/internal/store"
	"dhpf/internal/store/codec"
	"dhpf/internal/verify"
)

func sampleCP() *cp.CP {
	return &cp.CP{Terms: []cp.Term{
		{Array: "a", Subs: []cp.HomeSub{
			{Var: "i", Coef: 1, Off: ir.AffExpr{Const: -1, Terms: []ir.AffTerm{{Name: "n", Coef: 2}}}},
			{IsRange: true, Lo: ir.AffExpr{Const: 1}, Hi: ir.AffExpr{Const: 0, Terms: []ir.AffTerm{{Name: "n", Coef: 1}}}},
		}},
		{Array: "b", Subs: []cp.HomeSub{{Var: "j", Coef: -3, Off: ir.AffExpr{Const: 7}}}},
	}}
}

// roundTrip pushes one artifact value through encode+decode and returns
// the decoded value; it fails the test on any refusal.
func roundTrip(t *testing.T, kind string, val any) any {
	t.Helper()
	data, ok := encodeArtifact(kind, val)
	if !ok {
		t.Fatalf("encodeArtifact(%s) refused", kind)
	}
	out, ok := decodeArtifact(kind, data)
	if !ok {
		t.Fatalf("decodeArtifact(%s) refused", kind)
	}
	return out
}

func TestArtifactCodecRoundTrip(t *testing.T) {
	deps := &frozenDeps{Deps: []frozenDep{
		{
			Kind: dep.Flow, Src: 0, Dst: 3,
			SrcRef:   refSel{Kind: selLHS},
			DstRef:   refSel{Kind: selRHS, Idx: 2},
			Distance: []dep.Dist{{Known: true, D: -1}, {Known: false}},
			Level:    2,
		},
		{
			Kind: dep.Anti, Src: 5, Dst: 5,
			SrcRef: refSel{Kind: selScalar, Name: "tmp"},
			DstRef: refSel{Kind: selLHS},
		},
	}}
	if got := roundTrip(t, artifactDeps, deps); !reflect.DeepEqual(got, deps) {
		t.Errorf("deps round trip:\n got %+v\nwant %+v", got, deps)
	}

	sel := &frozenSel{
		Sel: &cp.ProcSelection{
			CPs:      map[int]*cp.CP{4: sampleCP(), 9: nil, 11: {}},
			Entry:    sampleCP(),
			HasEntry: true,
			Marked:   [][2]int{{4, 9}, {9, 11}},
			Notes: []cp.ProcNote{
				{Late: 1, Entry: 2, Top: 3, Phase: 4, Loop: 5, Sub: 6, Text: "note about stmt 4"},
				{Text: ""},
			},
		},
		OldIDs: []int{1, 4, 9, 11, 15},
	}
	if got := roundTrip(t, artifactSel, sel); !reflect.DeepEqual(got, sel) {
		t.Errorf("sel round trip:\n got %+v\nwant %+v", got, sel)
	}

	cm := &frozenComm{
		Events: []frozenEvent{
			{Kind: comm.ReadComm, Stmt: 2, Ref: refSel{Kind: selRHS, Idx: 1}, Depth: 1, Pipelined: true},
			{Kind: comm.WriteBack, Stmt: 7, Ref: refSel{Kind: selLHS}, Eliminated: true, Reason: "covered by stmt 2"},
		},
		Notes:  []string{"availability: 3 reads covered", ""},
		OldIDs: []int{0, 2, 7},
	}
	if got := roundTrip(t, artifactComm, cm); !reflect.DeepEqual(got, cm) {
		t.Errorf("comm round trip:\n got %+v\nwant %+v", got, cm)
	}

	vf := &frozenVerify{
		Diagnostics: []verify.Diagnostic{
			{Check: "on-home", Severity: verify.Info, Proc: "main", Stmt: 3, Ref: "a(i,j)", Set: "[1:n]", Why: "covered"},
			{Check: "comm", Severity: "error", Proc: "sweep", Stmt: -1, Why: "missing halo"},
		},
		Stmts: 12, Events: 4, Ranks: 4,
		OldIDs: []int{3, 8},
	}
	if got := roundTrip(t, artifactVerify, vf); !reflect.DeepEqual(got, vf) {
		t.Errorf("verify round trip:\n got %+v\nwant %+v", got, vf)
	}

	if got := roundTrip(t, artifactRawUnit, "deadbeef-unit-hash"); got != "deadbeef-unit-hash" {
		t.Errorf("rawunit round trip: %v", got)
	}
	calls := []string{"sweep", "add"}
	if got := roundTrip(t, artifactCalls, calls); !reflect.DeepEqual(got, calls) {
		t.Errorf("calls round trip: %v", got)
	}
}

// Deterministic encoding: the sel tier holds a map, which must encode
// identically regardless of insertion order or identical bytes on disk
// (chunk dedup) would silently stop working.
func TestArtifactCodecDeterministic(t *testing.T) {
	build := func(order []int) *frozenSel {
		ps := &cp.ProcSelection{CPs: map[int]*cp.CP{}}
		for _, id := range order {
			ps.CPs[id] = &cp.CP{Terms: []cp.Term{{Array: "a"}}}
		}
		return &frozenSel{Sel: ps}
	}
	a, _ := encodeArtifact(artifactSel, build([]int{1, 2, 3, 4, 5, 6, 7, 8}))
	b, _ := encodeArtifact(artifactSel, build([]int{8, 7, 6, 5, 4, 3, 2, 1}))
	if string(a) != string(b) {
		t.Fatal("sel encoding depends on map insertion order")
	}
}

// The ast tier (live IR pointers) and unexpected value types must be
// skipped, not serialized wrongly.
func TestArtifactCodecSkipsUnsupported(t *testing.T) {
	if _, ok := encodeArtifact(artifactAST, &ir.Procedure{}); ok {
		t.Error("ast tier encoded")
	}
	if _, ok := encodeArtifact(artifactDeps, "wrong type"); ok {
		t.Error("mistyped deps encoded")
	}
	if _, ok := encodeArtifact("nonsense", 7); ok {
		t.Error("unknown kind encoded")
	}
	if _, ok := decodeArtifact("nonsense", []byte("junk")); ok {
		t.Error("unknown kind decoded")
	}
}

// A value written under a different codec version reads as a miss.
func TestArtifactCodecVersionMismatchIsMiss(t *testing.T) {
	w := codec.NewWriter("artifact/"+artifactRawUnit, artifactCodecVersion+1)
	w.String("future bytes")
	if _, ok := decodeArtifact(artifactRawUnit, w.Bytes()); ok {
		t.Fatal("future-version artifact decoded")
	}
	if _, ok := decodeArtifact(artifactDeps, []byte("not even codec")); ok {
		t.Fatal("garbage decoded")
	}
}

// Truncated artifact bodies are misses, never panics or partial values.
func TestArtifactCodecTruncationIsMiss(t *testing.T) {
	full, ok := encodeArtifact(artifactVerify, &frozenVerify{
		Diagnostics: []verify.Diagnostic{{Check: "c", Severity: "info", Proc: "p", Why: "w"}},
		Stmts:       3, OldIDs: []int{1, 2, 3},
	})
	if !ok {
		t.Fatal("encode refused")
	}
	for cut := 0; cut < len(full); cut++ {
		if _, ok := decodeArtifact(artifactVerify, full[:cut]); ok {
			t.Fatalf("cut=%d decoded as complete", cut)
		}
	}
}

// The storeBacking adapter persists through a real journal: a Put via
// one backing is a Load via a second backing over a reopened store.
func TestStoreBackingPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifacts.journal")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := NewStoreBacking(st)
	key := artifactKey(artifactDeps, "env-fp-1")
	want := &frozenDeps{Deps: []frozenDep{{Kind: dep.Output, Src: 1, Dst: 2, Level: 1}}}
	b.Store(key, want, 128)

	// ast-tier values are skipped silently.
	b.Store(artifactKey(artifactAST, "x"), &ir.Procedure{}, 1)
	if _, _, ok := b.Load(artifactKey(artifactAST, "x")); ok {
		t.Error("ast tier persisted")
	}
	st.Close()

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, size, ok := NewStoreBacking(st2).Load(key)
	if !ok || size <= 0 {
		t.Fatalf("Load after reopen: ok=%v size=%d", ok, size)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("thawed deps differ:\n got %+v\nwant %+v", got, want)
	}
	if _, _, ok := NewStoreBacking(st2).Load(artifactKey(artifactDeps, "other-env")); ok {
		t.Error("phantom artifact")
	}
}
