package passes_test

import (
	"os"
	"strings"
	"testing"

	"dhpf/internal/passes"
	"dhpf/internal/spmd"
)

func lhsy(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/lhsy.hpf")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func TestPipelineRunsEveryPass(t *testing.T) {
	opt := passes.DefaultOptions()
	cc := &passes.CompileContext{Source: lhsy(t), Opt: opt}
	if err := passes.Run(cc); err != nil {
		t.Fatal(err)
	}
	names := passes.PassNames()
	if len(cc.Stats) != len(names) {
		t.Fatalf("got %d stats, want %d", len(cc.Stats), len(names))
	}
	for i, s := range cc.Stats {
		if s.Name != names[i] {
			t.Errorf("stat %d is %s, want %s", i, s.Name, names[i])
		}
	}
	if cc.Sel == nil || cc.Comm == nil || cc.Grid == nil {
		t.Fatal("pipeline left context incomplete")
	}
}

func TestDisableRemovesPass(t *testing.T) {
	opt := passes.DefaultOptions().WithDisabled(passes.PassAvailability)
	cc := &passes.CompileContext{Source: lhsy(t), Opt: opt}
	if err := passes.Run(cc); err != nil {
		t.Fatal(err)
	}
	for _, s := range cc.Stats {
		if s.Name == passes.PassAvailability {
			t.Fatal("disabled pass still ran")
		}
	}
}

func TestDisableValidation(t *testing.T) {
	if _, err := passes.BuildPipeline(passes.DefaultOptions().WithDisabled("no-such-pass")); err == nil {
		t.Fatal("unknown pass name accepted")
	}
	if _, err := passes.BuildPipeline(passes.DefaultOptions().WithDisabled(passes.PassCPSelect)); err == nil {
		t.Fatal("core pass disable accepted")
	}
}

// Disabling a pass must be equivalent to the legacy option boolean it
// replaces: same report, hence same CPs and same communication events.
func TestDisableMatchesLegacyBooleans(t *testing.T) {
	src := lhsy(t)
	cases := []struct {
		name   string
		legacy func(*spmd.Options)
		pass   string
	}{
		{"availability", func(o *spmd.Options) { o.Comm.Availability = false }, passes.PassAvailability},
		{"wbelim", func(o *spmd.Options) { o.Comm.RedundantWriteback = false }, passes.PassWritebackRed},
		{"localize", func(o *spmd.Options) { o.CP.Localize = false }, passes.PassLocalize},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			legacyOpt := spmd.DefaultOptions()
			c.legacy(&legacyOpt)
			lp, err := spmd.CompileSource(src, nil, legacyOpt)
			if err != nil {
				t.Fatal(err)
			}
			dp, err := spmd.CompileSource(src, nil, spmd.DefaultOptions().WithDisabled(c.pass))
			if err != nil {
				t.Fatal(err)
			}
			if lp.Report() != dp.Report() {
				t.Errorf("reports differ between legacy boolean and Disable(%q)", c.pass)
			}
		})
	}
}

func TestInstrumentCollectsVolumes(t *testing.T) {
	opt := passes.DefaultOptions()
	opt.Instrument = true
	cc := &passes.CompileContext{Source: lhsy(t), Opt: opt}
	if err := passes.Run(cc); err != nil {
		t.Fatal(err)
	}
	measured := 0
	for _, s := range cc.Stats {
		if s.Measured {
			measured++
		}
	}
	if measured == 0 {
		t.Fatal("no pass measured communication volume under Instrument")
	}
	table := passes.StatsTable(cc.Stats)
	for _, name := range passes.PassNames() {
		if !strings.Contains(table, name) {
			t.Errorf("stats table missing pass %s", name)
		}
	}
}

func TestEntryCPsRecordedAfterInterproc(t *testing.T) {
	cc := &passes.CompileContext{Source: lhsy(t), Opt: passes.DefaultOptions()}
	if err := passes.Run(cc); err != nil {
		t.Fatal(err)
	}
	for _, proc := range cc.IR.Procs {
		if _, ok := cc.Sel.Entry[proc.Name]; !ok {
			t.Errorf("proc %s has no entry CP record after interproc pass", proc.Name)
		}
	}
}
