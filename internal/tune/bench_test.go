package tune

import (
	"context"
	"testing"
)

// BenchmarkTuneScreenVsFull contrasts the cost of the two evaluation
// tiers on the same candidate: the analytic screen (a closed-form model
// evaluation) versus a full compile + simulate + verify pass.  The
// screen must be orders of magnitude cheaper — that gap is what lets
// the tuner cover the whole configuration space before spending the
// simulation budget on the top-K.
func BenchmarkTuneScreenVsFull(b *testing.B) {
	s, err := specSP(4, 12, 1).withDefaults()
	if err != nil {
		b.Fatal(err)
	}
	c := Candidate{Scheme: SchemeBlock, P1: 2, P2: 2, Grain: 8}

	b.Run("screen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := modelPredict(&s, c, s.TargetN, s.TargetSteps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tu := New() // cold caches: measure the real evaluation
			if _, err := tu.evalOnce(context.Background(), &s, c, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
