package tune

import (
	"fmt"
	"sort"
	"strings"

	"dhpf/internal/hpf"
	"dhpf/internal/passes"
	"dhpf/internal/perfmodel"
)

// Scheme names of a candidate's parallelization strategy.
const (
	// SchemeBlock is the compiled path: a P1×P2 BLOCK distribution of
	// the distributed dimensions, coarse-grain pipelined sweeps.
	SchemeBlock = "block"
	// SchemeTranspose is the PGI-style comparison point: 1-D z BLOCK
	// with full transposes around the z solve (bench mode only).
	SchemeTranspose = "transpose"
)

// Candidate is one point of the tuner's configuration space.
type Candidate struct {
	Scheme string `json:"scheme"`
	// Backend names the execution substrate ("mp", "shm", "hybrid");
	// empty means the message-passing default.  Block scheme only — the
	// hand-coded transpose runner is message-passing by construction.
	Backend string `json:"backend,omitempty"`
	// P1, P2 factor the processor count into the grid shape (block
	// scheme only; P1·P2 must equal Spec.Procs).
	P1 int `json:"p1,omitempty"`
	P2 int `json:"p2,omitempty"`
	// Grain is the coarse-grain pipelining strip width (block scheme).
	Grain int `json:"grain,omitempty"`
	// Disable lists compiler passes ablated for this candidate,
	// canonically sorted.
	Disable []string `json:"disable,omitempty"`
	// Extra binds swept source parameters (e.g. a BLOCK(B) block size).
	Extra map[string]int `json:"extra,omitempty"`
}

// Key is the canonical identity of the candidate: the tuner's final
// tie-break and the label used throughout the report trail.
func (c Candidate) Key() string {
	var b strings.Builder
	b.WriteString(c.Scheme)
	if c.Backend != "" && c.Backend != passes.BackendMP {
		b.WriteString(" " + c.Backend)
	}
	if c.Scheme == SchemeBlock {
		fmt.Fprintf(&b, " %dx%d g%d", c.P1, c.P2, c.Grain)
		if len(c.Disable) > 0 {
			b.WriteString(" -")
			b.WriteString(strings.Join(c.Disable, " -"))
		}
	}
	for _, k := range sortedKeys(c.Extra) {
		fmt.Fprintf(&b, " %s=%d", k, c.Extra[k])
	}
	return b.String()
}

// options builds the pass-pipeline option set the candidate encodes.
func (c Candidate) options() passes.Options {
	o := passes.DefaultOptions()
	if c.Backend != "" {
		o.Backend = c.Backend
	}
	if c.Grain > 0 {
		o.PipelineGrain = c.Grain
	}
	o.Disable = append([]string{}, c.Disable...)
	return o
}

// params merges the spec's base parameters with the candidate's grid
// shape and swept values.
func (c Candidate) params(s *Spec) map[string]int {
	p := map[string]int{}
	for k, v := range s.Params {
		p[k] = v
	}
	for k, v := range c.Extra {
		p[k] = v
	}
	if c.Scheme == SchemeBlock && s.GridParams[0] != "" {
		p[s.GridParams[0]] = c.P1
		p[s.GridParams[1]] = c.P2
	}
	return p
}

// enumerate produces the candidate list in a fixed, deterministic order:
// backends × grids × grains × ablations × sweep combinations, then the
// transpose comparison point (bench mode).
func enumerate(s *Spec) []Candidate {
	var out []Candidate
	sweeps := sweepCombos(s.Sweep)
	for _, backend := range s.Backends {
		for _, grid := range s.Grids {
			for _, g := range s.Grains {
				for _, abl := range s.Ablations {
					for _, ex := range sweeps {
						out = append(out, Candidate{
							Scheme:  SchemeBlock,
							Backend: backend,
							P1:      grid[0],
							P2:      grid[1],
							Grain:   g,
							Disable: canonDisable(abl),
							Extra:   ex,
						})
					}
				}
			}
		}
	}
	if s.Bench != "" && !s.NoTranspose {
		out = append(out, Candidate{Scheme: SchemeTranspose, Backend: passes.BackendMP})
	}
	return out
}

// allGrids lists every ordered factorization p1×p2 = procs.
func allGrids(procs int) [][2]int {
	var out [][2]int
	for p1 := 1; p1 <= procs; p1++ {
		if procs%p1 == 0 {
			out = append(out, [2]int{p1, procs / p1})
		}
	}
	return out
}

// sweepCombos expands a param→values map into the cartesian product of
// bindings, iterating keys in sorted order so the expansion is
// deterministic.  An empty sweep yields the single nil binding.
func sweepCombos(sweep map[string][]int) []map[string]int {
	if len(sweep) == 0 {
		return []map[string]int{nil}
	}
	keys := make([]string, 0, len(sweep))
	for k := range sweep {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	combos := []map[string]int{{}}
	for _, k := range keys {
		var next []map[string]int
		for _, base := range combos {
			for _, v := range sweep[k] {
				m := map[string]int{}
				for bk, bv := range base {
					m[bk] = bv
				}
				m[k] = v
				next = append(next, m)
			}
		}
		combos = next
	}
	return combos
}

func canonDisable(names []string) []string {
	if len(names) == 0 {
		return nil
	}
	out := append([]string{}, names...)
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// minFeasibleBlock is the smallest per-rank block extent the compiled
// executor's pipelined sweep schedule handles: below 3 points a
// distributed dimension has no interior strip between its halos and the
// wavefront exchange deadlocks, so the tuner refuses such grids up
// front rather than relying on the wall-clock safety valve.
const minFeasibleBlock = 3

// feasible reports whether the candidate can run at all, with the
// reason when it cannot.  Block-shape checks need the problem size, so
// they only apply in bench mode (generic sources fall back to the
// evaluation wall limit).
func (s *Spec) feasible(c Candidate) (bool, string) {
	switch c.Scheme {
	case SchemeTranspose:
		if s.Procs > s.N {
			return false, fmt.Sprintf("transpose needs procs ≤ n (%d > %d)", s.Procs, s.N)
		}
	case SchemeBlock:
		if c.P1 < 1 || c.P2 < 1 || c.P1*c.P2 != s.Procs {
			return false, fmt.Sprintf("grid %dx%d does not tile %d procs", c.P1, c.P2, s.Procs)
		}
		if c.Backend == passes.BackendHybrid && c.P1 < 2 {
			// A hybrid layout groups ranks by their dim-0 coordinate; with
			// P1 = 1 there is one group and the candidate is the pure shm
			// point already enumerated.
			return false, fmt.Sprintf("hybrid layout needs P1 ≥ 2 (1x%d is pure shm)", c.P2)
		}
		if s.N > 0 {
			for _, p := range []int{c.P1, c.P2} {
				if p > 1 && hpf.DefaultBlockSize(s.N, p) < minFeasibleBlock {
					return false, fmt.Sprintf("block %d < %d points over %d procs (n=%d)",
						hpf.DefaultBlockSize(s.N, p), minFeasibleBlock, p, s.N)
				}
			}
		}
	}
	return true, ""
}

// ablationPriors multiply the analytic screen's prediction when a pass
// is disabled: coarse cost factors distilled from the paper's measured
// optimization contributions (§4–§7).  They only order candidates for
// the screen — the full tier measures the real cost of any ablated
// survivor.
var ablationPriors = map[string]float64{
	passes.PassNewProp:      1.35,
	passes.PassLocalize:     1.20,
	passes.PassInterproc:    1.05,
	passes.PassLoopDist:     1.10,
	passes.PassAvailability: 1.25,
	passes.PassWritebackRed: 1.05,
}

func ablationFactor(disable []string) float64 {
	f := 1.0
	for _, d := range disable {
		if p, ok := ablationPriors[d]; ok {
			f *= p
		} else {
			f *= 1.15 // unknown pass: assume it mattered
		}
	}
	return f
}

// modelPredict scores a candidate analytically at problem size n×steps.
// Only meaningful in bench mode.
func modelPredict(s *Spec, c Candidate, n, steps int) (float64, error) {
	in := perfmodel.Input{
		Bench: s.Bench, N: n, Steps: steps, Procs: s.Procs, Cfg: s.Machine,
		PipelineGrain: c.Grain, P1: c.P1, P2: c.P2,
	}
	if c.Scheme == SchemeTranspose {
		return perfmodel.PredictTranspose(in)
	}
	predict := perfmodel.PredictDHPF
	switch c.Backend {
	case passes.BackendShm:
		predict = perfmodel.PredictShm
	case passes.BackendHybrid:
		predict = perfmodel.PredictHybrid
	}
	t, err := predict(in)
	if err != nil {
		return 0, err
	}
	return t * ablationFactor(c.Disable), nil
}
