package tune

import (
	"context"
	"strings"
	"testing"

	"dhpf/internal/comm"
	"dhpf/internal/cp"
	"dhpf/internal/ir"
	"dhpf/internal/nas"
	"dhpf/internal/passes"
	"dhpf/internal/spmd"
)

func specSP(procs, n, steps int) Spec {
	return Spec{
		Source: nas.SPSource(n, steps, 1, procs),
		Bench:  "sp",
		N:      n,
		Steps:  steps,
		Procs:  procs,
	}
}

func leaderboard(t *testing.T, res *Result) []string {
	t.Helper()
	rows := make([]string, 0, len(res.Entries))
	for _, e := range res.Entries {
		rows = append(rows, e.Key()+" "+e.Status)
	}
	return rows
}

// The acceptance property: a fixed spec produces an identical ranked
// leaderboard on repeated runs — on a warm tuner (memo hits) and on a
// cold one.
func TestTuneDeterministicLeaderboard(t *testing.T) {
	s := specSP(4, 12, 1)
	s.Grains = []int{4, 8}
	s.TopK = 3
	s.Workers = 2

	tu := New()
	first, err := tu.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := tu.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New().Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}

	for name, res := range map[string]*Result{"warm": warm, "cold": cold} {
		if got, want := leaderboard(t, res), leaderboard(t, first); !equalStrings(got, want) {
			t.Errorf("%s leaderboard differs:\n got %v\nwant %v", name, got, want)
		}
		for i := range res.Entries {
			a, b := res.Entries[i], first.Entries[i]
			if a.Screen != b.Screen || a.Sim != b.Sim || a.Rank != b.Rank {
				t.Errorf("%s entry %d differs: %+v vs %+v", name, i, a, b)
			}
		}
	}
	if warm.Counters.MemoHits == 0 {
		t.Errorf("second run on the same tuner hit no memoized evaluations: %+v", warm.Counters)
	}
	if first.Counters.MemoHits != 0 {
		t.Errorf("first run should miss the memo cache: %+v", first.Counters)
	}
	if first.Winner == nil || !first.Winner.Verified {
		t.Fatalf("winner missing or unverified: %+v", first.Winner)
	}
	if first.Winner.ModelRatio <= 0 {
		t.Errorf("winner carries no model calibration ratio: %+v", first.Winner)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The paper's Table 8.1 ordering: at 16 processors and Class A scale,
// the compiled 2-D BLOCK code beats the PGI-style 1-D transpose code.
// The tuner simulates at a tractable source size (18³) but ranks by the
// analytic prediction at the target size (64³), so it must rediscover
// that ordering — and refuse the degenerate 1×16/16×1 grids whose
// 2-point blocks the executor cannot pipeline.
func TestTuneSPRediscoversTable81At16Ranks(t *testing.T) {
	s := specSP(16, 18, 1)
	s.TargetN = 64
	s.Grains = []int{8}
	s.TopK = 4 // three feasible grids + the transpose comparison point

	res, err := New().Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Winner
	if w == nil || w.Scheme != SchemeBlock {
		t.Fatalf("winner should be a 2-D block configuration, got %+v", w)
	}
	if !w.Verified {
		t.Errorf("winner not verified against the serial reference: %+v", w)
	}
	var transpose *Entry
	infeasible := map[string]bool{}
	for i := range res.Entries {
		e := &res.Entries[i]
		if e.Scheme == SchemeTranspose {
			transpose = e
		}
		if e.Status == StatusInfeasible {
			infeasible[e.Key()] = true
		}
	}
	if transpose == nil {
		t.Fatal("no transpose candidate in the leaderboard")
	}
	if transpose.Status != StatusOK {
		t.Fatalf("transpose candidate was not fully evaluated: %+v", transpose)
	}
	if transpose.Rank <= w.Rank {
		t.Errorf("transpose (rank %d) should rank below the block winner (rank %d)", transpose.Rank, w.Rank)
	}
	if transpose.Screen <= w.Screen {
		t.Errorf("predicted cost should favor 2-D block at 64³: block %.4g vs transpose %.4g", w.Screen, transpose.Screen)
	}
	for _, key := range []string{"block 1x16 g8", "block 16x1 g8"} {
		if !infeasible[key] {
			t.Errorf("degenerate grid %q should be infeasible; entries: %v", key, leaderboard(t, res))
		}
	}
}

// The static-screen gate: with Spec.StaticScreen the tuner must find
// the *same* Table 8.1 winner at 16 ranks with strictly fewer full
// simulations — the cost oracle's zero-simulation tier demotes the
// statically slower block grids before the simulator ever sees them.
func TestTuneStaticScreenSameWinnerFewerEvals(t *testing.T) {
	base := specSP(16, 18, 1)
	base.TargetN = 64
	base.Grains = []int{8}
	base.TopK = 4

	plain, err := New().Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Winner == nil || plain.Winner.Scheme != SchemeBlock {
		t.Fatalf("baseline winner should be a block configuration: %+v", plain.Winner)
	}
	if plain.Counters.StaticEvals != 0 {
		t.Errorf("baseline run must not invoke the oracle, got %d static evals", plain.Counters.StaticEvals)
	}

	withStatic := base
	withStatic.StaticScreen = true
	static, err := New().Run(context.Background(), withStatic)
	if err != nil {
		t.Fatal(err)
	}
	if static.Winner == nil {
		t.Fatal("static-screen run found no winner")
	}
	if got, want := static.Winner.Key(), plain.Winner.Key(); got != want {
		t.Errorf("static screen changed the winner: %q, baseline %q\ntrail: %v", got, want, static.Trail)
	}
	if !static.Winner.Verified {
		t.Errorf("static-screen winner not verified: %+v", static.Winner)
	}
	if static.Winner.Static <= 0 {
		t.Errorf("winner should carry its static time: %+v", static.Winner)
	}
	if got, base := static.Counters.FullEvals, plain.Counters.FullEvals; got >= base {
		t.Errorf("static screen must cut full evaluations: %d with, %d without", got, base)
	}
	if static.Counters.StaticEvals == 0 {
		t.Error("static-screen run reports zero oracle costings")
	}
	// The demoted block survivors stay on the leaderboard as screened
	// entries with the demotion note — nothing silently disappears.
	demoted := 0
	for _, e := range static.Entries {
		if e.Scheme == SchemeBlock && e.Status == StatusScreened && strings.Contains(e.Note, "static screen") {
			demoted++
		}
	}
	if want := plain.Counters.FullEvals - static.Counters.FullEvals; demoted != want {
		t.Errorf("%d demoted block entries on the leaderboard, want %d\n%v",
			demoted, want, leaderboard(t, static))
	}

	// Determinism across a shared-tuner rerun: memo hits must not
	// change the static leaderboard.
	tu := New()
	first, err := tu.Run(context.Background(), withStatic)
	if err != nil {
		t.Fatal(err)
	}
	again, err := tu.Run(context.Background(), withStatic)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := leaderboard(t, again), leaderboard(t, first); !equalStrings(got, want) {
		t.Errorf("static-screen leaderboard not reproducible:\n got %v\nwant %v", got, want)
	}
}

// With a sub-1 prune factor and single-worker waves, every survivor
// after the first must beat the incumbent by a wide margin or be
// abandoned — and the abandonment must reproduce identically on a rerun
// even though pruned evaluations are never cached.
func TestTunePruningDeterministic(t *testing.T) {
	s := specSP(4, 12, 1)
	s.Grains = []int{8}
	s.TopK = 3
	s.Workers = 1
	s.PruneFactor = 0.05 // only a 20× speedup over the incumbent survives

	tu := New()
	first, err := tu.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if first.Counters.Pruned != 2 {
		t.Fatalf("want the two later waves pruned, got %+v\n%v", first.Counters, first.Trail)
	}
	if first.Winner == nil {
		t.Fatal("pruning must still leave the wave-1 winner")
	}
	again, err := tu.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := leaderboard(t, again), leaderboard(t, first); !equalStrings(got, want) {
		t.Errorf("pruned leaderboard not reproducible:\n got %v\nwant %v", got, want)
	}
	if again.Counters.Pruned != first.Counters.Pruned {
		t.Errorf("prune counts differ across runs: %d vs %d", again.Counters.Pruned, first.Counters.Pruned)
	}
}

const genericSrc = `
program relax
param N = 24
param P1 = 1
param P2 = 4

!hpf$ processors procs(P1, P2)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(BLOCK, BLOCK) onto procs

subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      a(i,j) = 1.0 + 0.01*i + 0.02*j
      b(i,j) = 0.0
    enddo
  enddo
  do t = 1, 3
    do j = 1, N-2
      do i = 1, N-2
        b(i,j) = 0.25*(a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
      enddo
    enddo
    do j = 1, N-2
      do i = 1, N-2
        a(i,j) = b(i,j)
      enddo
    enddo
  enddo
end
`

// A source outside the benchmark family has no analytic model: every
// screen score is zero and the full tier ranks by measured simulation,
// verifying every main array against the serial reference.
func TestTuneGenericSource(t *testing.T) {
	s := Spec{
		Source: genericSrc,
		Procs:  4,
		Grains: []int{8},
		TopK:   8,
	}
	res, err := New().Run(context.Background(), s)
	if err != nil {
		t.Fatalf("%v\ntrail: %v", err, res.Trail)
	}
	if res.Winner == nil || !res.Winner.Verified {
		t.Fatalf("winner missing or unverified: %+v", res.Winner)
	}
	if res.Winner.ComparedArrays < 2 {
		t.Errorf("generic mode should verify every main array, compared %d", res.Winner.ComparedArrays)
	}
	var lastSim float64
	for _, e := range res.Entries {
		if e.Status != StatusOK {
			continue
		}
		if e.Screen != 0 {
			t.Errorf("generic candidates must have zero screen score: %+v", e)
		}
		if e.Sim < lastSim {
			t.Errorf("ok entries not sorted by simulated time: %v", leaderboard(t, res))
		}
		lastSim = e.Sim
	}
}

// The economics of the two-level protocol: screening the whole space
// must cost at least an order of magnitude less than the full tier.
func TestScreenAtLeastTenTimesCheaperThanFull(t *testing.T) {
	s := specSP(4, 12, 1)
	s.Grains = []int{8}
	s.TopK = 1
	res, err := New().Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.FullWall < 10*res.Counters.ScreenWall {
		t.Errorf("screen tier (%v) not ≥10× cheaper than full tier (%v)",
			res.Counters.ScreenWall, res.Counters.FullWall)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{},                                   // no source
		{Source: "x", Procs: 0},              // no procs
		{Source: "x", Procs: 4, Bench: "lu"}, // unknown bench
		{Source: "x", Procs: 4, Bench: "sp"}, // bench without size
		{Source: "x", Procs: 4, Backends: []string{"cuda"}}, // unknown backend
	}
	for i, s := range cases {
		if _, err := New().Run(context.Background(), s); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

// The backend dimension: with Backends = {mp, shm, hybrid} the tuner
// crosses substrates with grids and grains, evaluates each feasible
// point through the full tier (so the race-freedom theorem gates the
// shared-memory candidates), records the backend in every entry's key
// and JSON, and — because the shared-memory substrate pays pull costs
// instead of message costs for identical flops — crowns an shm-backed
// winner.  The whole leaderboard must reproduce on a cold tuner.
func TestTuneBackendSearch(t *testing.T) {
	s := specSP(4, 12, 1)
	s.Grids = [][2]int{{2, 2}, {1, 4}}
	s.Grains = []int{8}
	s.Backends = []string{passes.BackendMP, passes.BackendShm, passes.BackendHybrid}
	s.NoTranspose = true
	s.TopK = 5 // every feasible backend×grid point reaches the full tier

	tu := New()
	res, err := tu.Run(context.Background(), s)
	if err != nil {
		t.Fatalf("%v\ntrail: %v", err, res.Trail)
	}

	byKey := map[string]*Entry{}
	for i := range res.Entries {
		byKey[res.Entries[i].Key()] = &res.Entries[i]
	}
	for key, backend := range map[string]string{
		"block 2x2 g8":        passes.BackendMP,
		"block shm 2x2 g8":    passes.BackendShm,
		"block hybrid 2x2 g8": passes.BackendHybrid,
	} {
		e := byKey[key]
		if e == nil {
			t.Fatalf("candidate %q missing from leaderboard: %v", key, leaderboard(t, res))
		}
		if e.Status != StatusOK || !e.Verified {
			t.Errorf("%q not fully evaluated+verified: status %s, note %q", key, e.Status, e.Note)
		}
		if e.Backend != backend {
			t.Errorf("%q records backend %q, want %q", key, e.Backend, backend)
		}
		if e.Options == nil || e.Options.Backend != backend {
			t.Errorf("%q options do not reproduce the backend: %+v", key, e.Options)
		}
	}

	// Hybrid with one group is the pure-shm point; the tuner must prune
	// the duplicate up front rather than evaluate it twice.
	if e := byKey["block hybrid 1x4 g8"]; e == nil || e.Status != StatusInfeasible {
		t.Errorf("degenerate hybrid 1x4 should be infeasible: %+v", e)
	}

	// Substrate economics: the shm run of the same grid must move zero
	// messages and finish in less virtual time than its mp twin; hybrid
	// sits in between, with only the outer (cross-group) traffic.
	mp, shm, hyb := byKey["block 2x2 g8"], byKey["block shm 2x2 g8"], byKey["block hybrid 2x2 g8"]
	if shm.Msgs != 0 {
		t.Errorf("shm candidate reports %d messages, want 0", shm.Msgs)
	}
	if mp.Msgs == 0 {
		t.Errorf("mp candidate reports no messages")
	}
	if hyb.Msgs == 0 || hyb.Msgs >= mp.Msgs {
		t.Errorf("hybrid outer traffic should be positive and below mp: hybrid %d vs mp %d", hyb.Msgs, mp.Msgs)
	}
	if shm.Sim >= mp.Sim {
		t.Errorf("shm not faster than mp on the same grid: %.6g vs %.6g", shm.Sim, mp.Sim)
	}
	if shm.Screen >= mp.Screen {
		t.Errorf("screen does not favor shm at the target size: %.6g vs %.6g", shm.Screen, mp.Screen)
	}
	if res.Winner == nil || res.Winner.Backend != passes.BackendShm {
		t.Fatalf("winner should be shm-backed: %+v", res.Winner)
	}

	cold, err := New().Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := leaderboard(t, cold), leaderboard(t, res); !equalStrings(got, want) {
		t.Errorf("backend leaderboard not reproducible:\n got %v\nwant %v", got, want)
	}
	if cold.Winner.Key() != res.Winner.Key() {
		t.Errorf("winner differs across cold runs: %q vs %q", cold.Winner.Key(), res.Winner.Key())
	}
}

// The safety gate applies per backend: the corrupted-partition overlap
// that the race theorem catches under shm is a verification error for
// the shm candidate while the untouched mp twin of the same grid still
// wins the leaderboard.
func TestTuneBackendSafetyGate(t *testing.T) {
	// Re-home genericSrc's relaxation statement onto the owners of two
	// fixed columns: the ranks owning columns 5 and 15 then execute every
	// iteration and write the same elements of b in one barrier phase.
	overlap := &cp.CP{}
	for _, col := range []int{5, 15} {
		overlap.AddTerm(cp.Term{Array: "a", Subs: []cp.HomeSub{
			{Var: "i", Coef: 1, Off: ir.Num(0)},
			{Off: ir.Num(col)},
		}})
	}
	testCorrupt = func(p *spmd.Program) {
		if b, _ := passes.ParseBackend(p.Opt.Backend); b != passes.BackendShm {
			return
		}
		for _, proc := range p.IR.Procs {
			ir.Walk(proc.Body, func(s ir.Stmt, loops []*ir.Loop) bool {
				if a, ok := s.(*ir.Assign); ok && a.LHS.Name == "b" && len(loops) == 3 {
					p.Sel.CPs[a.ID] = overlap
				}
				return true
			})
		}
	}
	defer func() { testCorrupt = nil }()

	s := Spec{
		Source:   genericSrc,
		Procs:    4,
		Grids:    [][2]int{{1, 4}},
		Grains:   []int{8},
		Backends: []string{passes.BackendMP, passes.BackendShm},
		TopK:     2,
	}
	res, err := New().Run(context.Background(), s)
	if err != nil {
		t.Fatalf("%v\ntrail: %v", err, res.Trail)
	}
	if res.Winner == nil || res.Winner.Backend != passes.BackendMP {
		t.Fatalf("mp twin should survive and win: %+v", res.Winner)
	}
	var rejected *Entry
	for i := range res.Entries {
		if res.Entries[i].Backend == passes.BackendShm {
			rejected = &res.Entries[i]
		}
	}
	if rejected == nil || rejected.Status != StatusError {
		t.Fatalf("corrupted shm candidate not rejected: %+v", rejected)
	}
	if !strings.Contains(rejected.Note, "safety gate") {
		t.Errorf("rejection note lacks the gate: %q", rejected.Note)
	}
}

// Cancelling the context mid-search surfaces the context error.
func TestTuneCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := specSP(4, 12, 1)
	if _, err := New().Run(ctx, s); err == nil {
		t.Error("cancelled tune returned no error")
	}
}

// The safety gate: a candidate whose compiled analyses fail translation
// validation is rejected with the verifier's diagnostic in the decision
// trail, never ranked.  The corruption hook deletes every read event —
// the same mutation as the verifier's own adversarial tests.
func TestTuneRejectsUnsafeCandidate(t *testing.T) {
	testCorrupt = func(p *spmd.Program) {
		a := p.Comm["main"]
		var kept []*comm.Event
		for _, e := range a.Events {
			if e.Kind != comm.ReadComm {
				kept = append(kept, e)
			}
		}
		a.Events = kept
	}
	defer func() { testCorrupt = nil }()

	s := Spec{
		Source: genericSrc,
		Procs:  4,
		Grids:  [][2]int{{1, 4}},
		Grains: []int{8},
		TopK:   1,
	}
	res, err := New().Run(context.Background(), s)
	if err == nil {
		t.Fatalf("corrupted candidate won:\n%v", leaderboard(t, res))
	}
	var rejected *Entry
	for i := range res.Entries {
		if res.Entries[i].Status == StatusError {
			rejected = &res.Entries[i]
		}
	}
	if rejected == nil {
		t.Fatalf("no error entry:\n%v", leaderboard(t, res))
	}
	if !strings.Contains(rejected.Note, "safety gate") ||
		!strings.Contains(rejected.Note, "covered by no communication event") {
		t.Errorf("rejection note lacks the diagnostic: %q", rejected.Note)
	}
	trail := strings.Join(res.Trail, "\n")
	if !strings.Contains(trail, "safety gate") || !strings.Contains(trail, "[comm]") {
		t.Errorf("decision trail lacks the safety-gate diagnostic:\n%s", trail)
	}
}
