// Package tune is the budgeted parallel auto-tuner of the reproduction:
// given a mini-HPF source it searches the cross product of
// execution backends (message-passing, shared-memory, hybrid),
// processor-grid shapes, distribution schemes (the compiled 2-D BLOCK
// code vs the PGI-style 1-D transpose code), coarse-grain pipelining
// granularities, pass ablations, and swept source parameters for the
// configuration with the lowest predicted cost at a target problem
// size.
//
// The search follows the repo's two-level evaluation protocol (see
// internal/perfmodel): a cheap analytic screen scores every candidate
// at the *target* size — the paper's Class A/B scale, where the
// interpreting simulator cannot go — and the top-K survivors are then
// compiled and run through the deterministic message-passing simulator
// at the *source* size, which verifies each survivor's numerics against
// the serial reference, measures its virtual-time cost, and reports the
// simulation/model calibration ratio.  Candidates whose simulated
// virtual time exceeds the incumbent best by a margin are abandoned
// early (the simulator's TimeLimit), and completed evaluations are
// memoized across Tune calls through content-addressed fingerprints.
//
// Everything is deterministic for a fixed spec: enumeration order is
// fixed, subsampling uses the caller's seed, the full tier runs in
// waves whose pruning limits depend only on completed virtual times
// (themselves deterministic), and ties break on the canonical candidate
// key — so repeated runs produce identical leaderboards, memo hits or
// not.
package tune

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"dhpf/internal/analysis"
	"dhpf/internal/cache"
	"dhpf/internal/mpsim"
	"dhpf/internal/nas"
	"dhpf/internal/parser"
	"dhpf/internal/passes"
	"dhpf/internal/spmd"
)

// Spec describes one tuning request: the program, the configuration
// space, and the search budget.
type Spec struct {
	// Source is the mini-HPF program text.  The grid-shape parameters
	// named by GridParams must appear in its PROCESSORS directive.
	Source string
	// Params are base parameter overrides applied to every candidate.
	Params map[string]int

	// Bench names the benchmark family of Source ("sp" or "bt").  It
	// unlocks the analytic screen and the transpose comparison scheme;
	// empty means a generic source, for which every screen score is
	// zero and the full tier ranks by measured simulation alone.
	Bench string
	// N, Steps are the source problem size (bench mode; used by the
	// feasibility filter, the transpose runner, and model calibration).
	N, Steps int
	// TargetN, TargetSteps are the problem size the screen ranks for;
	// zero means the source size.  Setting these to a paper-scale size
	// (e.g. Class A's 64³) makes the tuner answer "which configuration
	// wins at scale" while still simulating at a tractable size.
	TargetN, TargetSteps int

	// Procs is the virtual machine size.
	Procs int
	// GridParams names the two source parameters that set the processor
	// grid shape; default {"P1", "P2"}.  Grid parameters must only
	// affect directives, never the computed values (the serial
	// reference is shared across shapes).
	GridParams [2]string

	// Grids, Grains, Ablations, Sweep span the candidate space; each
	// nil field gets a default (all factorizations of Procs; strip
	// widths 4/8/16; no ablations; no sweeps).  Ablations lists
	// Options.Disable sets to try; Sweep maps extra source parameters
	// to candidate values (e.g. a BLOCK(B) block size).
	Grids     [][2]int
	Grains    []int
	Ablations [][]string
	Sweep     map[string][]int
	// Backends lists the execution substrates the block scheme tries
	// ("mp", "shm", "hybrid"); nil means message-passing only, so the
	// backend dimension is opt-in and default leaderboards are
	// unchanged.  The search is joint: every backend is crossed with
	// every grid × grain × ablation point, because the best grid shape
	// differs per substrate (shm has no message cost to amortize, hybrid
	// wants a tall dim-0 to keep groups wide).
	Backends []string
	// NoTranspose drops the transpose comparison candidate.
	NoTranspose bool

	// TopK bounds the full tier: how many screen survivors are compiled
	// and simulated (default 3).
	TopK int
	// StaticScreen inserts a zero-simulation middle tier between the
	// analytic screen and the full tier: every block-scheme survivor is
	// compiled (never simulated) and the static cost oracle
	// (internal/analysis) derives its exact execution counters, which
	// the machine's cost parameters convert to a static time.  Only the
	// ⌈TopK/2⌉ statically-cheapest block survivors go on to full
	// simulation, so the full tier strictly shrinks whenever more than
	// that survive the analytic screen; transpose candidates have no
	// compiled program and bypass the tier.  Unlike the analytic screen
	// the oracle's counters are exact (the same flop and message totals
	// the simulator would observe), so the demotions are grounded in
	// measurements, not a model.
	StaticScreen bool
	// MaxScreen caps the screened candidate count; when the space is
	// larger, a Seed-deterministic subsample is screened (0 = screen
	// everything).
	MaxScreen int
	Seed      int64
	// Workers sizes the full tier's parallel evaluation waves (default
	// 4).  It is part of the budget: changing it changes the wave
	// structure and therefore which candidates may be pruned.
	Workers int
	// PruneFactor sets the early-pruning margin: a candidate is
	// abandoned once its simulated virtual time exceeds the incumbent
	// best × PruneFactor (default 4; it is a safety margin, not a
	// ranking tolerance).
	PruneFactor float64

	// Engine names the execution engine full-tier evaluations run
	// under ("" = compiled; "interp"; "codegen" uses native kernels
	// where the process registry has them, cutting the wall-clock cost
	// of each simulated candidate).  Virtual-time results are
	// byte-identical across engines, so the leaderboard is unchanged —
	// only the search gets faster.
	Engine string

	// Machine is the simulated cost model; zero means the paper's SP2.
	Machine mpsim.Config
	// EvalWallLimit bounds each full evaluation in real time (default
	// 2m): the safety valve for configurations that deadlock the
	// executor, which no virtual-time limit can catch.
	EvalWallLimit time.Duration

	// VerifyArrays names the arrays compared against the serial
	// reference; empty means every main-procedure array (bench-mode
	// transpose candidates always verify "u").  SkipVerify disables the
	// comparison; VerifyTol is the max relative error (default 1e-10).
	VerifyArrays []string
	VerifyTol    float64
	SkipVerify   bool
}

// testCorrupt, when set by tests, mutates a compiled candidate before
// the safety gate — the hook proving the gate rejects an unsafe program
// (nil in production).
var testCorrupt func(*spmd.Program)

// withDefaults resolves every unset knob.
func (s Spec) withDefaults() (Spec, error) {
	if s.Source == "" {
		return s, errors.New("tune: empty source")
	}
	if s.Procs < 1 {
		return s, errors.New("tune: procs must be ≥ 1")
	}
	if s.Bench != "" {
		if s.Bench != "sp" && s.Bench != "bt" {
			return s, fmt.Errorf("tune: unknown bench %q", s.Bench)
		}
		if s.N < 1 || s.Steps < 1 {
			return s, errors.New("tune: bench mode needs N and Steps")
		}
	}
	if s.GridParams[0] == "" {
		s.GridParams = [2]string{"P1", "P2"}
	}
	if s.Grids == nil {
		s.Grids = allGrids(s.Procs)
	}
	if s.Grains == nil {
		s.Grains = []int{4, 8, 16}
	}
	if s.Ablations == nil {
		s.Ablations = [][]string{nil}
	}
	if s.Backends == nil {
		s.Backends = []string{passes.BackendMP}
	}
	for i, b := range s.Backends {
		canon, err := passes.ParseBackend(b)
		if err != nil {
			return s, fmt.Errorf("tune: %w", err)
		}
		s.Backends[i] = canon
	}
	if s.TopK < 1 {
		s.TopK = 3
	}
	if s.Workers < 1 {
		s.Workers = 4
	}
	if s.PruneFactor <= 0 {
		s.PruneFactor = 4
	}
	if s.Machine.FlopTime == 0 && s.Machine.Latency == 0 {
		s.Machine = mpsim.SP2Config(s.Procs)
	}
	if s.EvalWallLimit <= 0 {
		s.EvalWallLimit = 2 * time.Minute
	}
	if s.VerifyTol <= 0 {
		s.VerifyTol = 1e-10
	}
	if s.TargetN == 0 {
		s.TargetN = s.N
	}
	if s.TargetSteps == 0 {
		s.TargetSteps = s.Steps
	}
	return s, nil
}

// Entry statuses, in leaderboard order: fully evaluated candidates
// first, then screened-only ones, then the demoted classes.
const (
	StatusOK         = "ok"         // simulated (and verified, unless skipped)
	StatusScreened   = "screened"   // ranked by the screen only
	StatusPruned     = "pruned"     // abandoned: slower than incumbent × margin
	StatusMismatch   = "mismatch"   // simulated but numerics diverged
	StatusError      = "error"      // compile or execution failure
	StatusInfeasible = "infeasible" // rejected before evaluation
)

func statusRank(s string) int {
	switch s {
	case StatusOK:
		return 0
	case StatusScreened:
		return 1
	case StatusPruned:
		return 2
	case StatusMismatch:
		return 3
	case StatusError:
		return 4
	default:
		return 5
	}
}

// Entry is one leaderboard row.
type Entry struct {
	Candidate
	Rank   int    `json:"rank"`
	Status string `json:"status"`
	// Screen is the analytic prediction at the target size (seconds
	// per run); zero for generic sources.
	Screen float64 `json:"screen_seconds"`
	// Static is the cost oracle's zero-simulation time at the source
	// size (StaticScreen tier only; zero when the tier is off or the
	// candidate bypassed it).
	Static float64 `json:"static_seconds,omitempty"`
	// Sim is the measured virtual time at the source size, with its
	// message totals (full tier only).
	Sim   float64 `json:"sim_seconds,omitempty"`
	Msgs  int64   `json:"sim_messages,omitempty"`
	Bytes int64   `json:"sim_bytes,omitempty"`
	// ModelRatio is Sim divided by the model's prediction at the
	// *source* size — the calibration factor the report surfaces so a
	// reader can judge how much to trust the target-size ranking.
	ModelRatio float64 `json:"model_ratio,omitempty"`
	MaxRelErr  float64 `json:"max_rel_err,omitempty"`
	Verified   bool    `json:"verified,omitempty"`
	// ComparedArrays counts the arrays checked against the serial
	// reference.
	ComparedArrays int `json:"compared_arrays,omitempty"`
	// Cached reports the evaluation was served by the memo cache.
	Cached bool   `json:"cached,omitempty"`
	Note   string `json:"note,omitempty"`
	// Params and Options reproduce the candidate outside the tuner:
	// feed them to Compile to get the winning program.
	Params  map[string]int  `json:"params,omitempty"`
	Options *passes.Options `json:"options,omitempty"`
}

// Counters summarize the search effort.
type Counters struct {
	Candidates int `json:"candidates"`
	Screened   int `json:"screened"`
	Infeasible int `json:"infeasible"`
	FullEvals  int `json:"full_evals"`
	Pruned     int `json:"pruned"`
	MemoHits   int `json:"memo_hits"`
	MemoMisses int `json:"memo_misses"`
	// StaticEvals counts candidates costed by the static oracle tier
	// (zero unless Spec.StaticScreen).
	StaticEvals int `json:"static_evals,omitempty"`
	// ScreenWall and FullWall are the real time spent in each tier —
	// the two-level protocol's economics (the screen covers the whole
	// space for a fraction of one simulation).  StaticWall is the
	// oracle tier's share when enabled.
	ScreenWall time.Duration `json:"screen_wall_ns"`
	StaticWall time.Duration `json:"static_wall_ns,omitempty"`
	FullWall   time.Duration `json:"full_wall_ns"`
}

// Result is the tuner's report: the ranked leaderboard, the winner, the
// effort counters, and a human-readable decision trail.
type Result struct {
	Winner   *Entry   `json:"winner,omitempty"`
	Entries  []Entry  `json:"entries"`
	Counters Counters `json:"counters"`
	Trail    []string `json:"trail"`
}

// fullEval is one memoized full-tier measurement.
type fullEval struct {
	Seconds   float64
	Msgs      int64
	Bytes     int64
	MaxRelErr float64
	Verified  bool
	Compared  int
}

// staticEval is one memoized static-tier costing: the oracle's exact
// counters for a compiled (never simulated) candidate, reduced to a
// ranking time under the machine's cost parameters.
type staticEval struct {
	Seconds float64
	Flops   float64
	Msgs    int64
	Bytes   int64
	Exact   bool
}

// Tuner runs tuning requests over shared memo caches: repeated Tune
// calls (or overlapping specs) reuse full evaluations and serial
// reference runs keyed by content fingerprints.
type Tuner struct {
	evals   *cache.Cache[fullEval]
	statics *cache.Cache[staticEval]
	serials *cache.Cache[map[string][]float64]
}

// New returns a Tuner with default cache budgets (evaluations are
// bounded by count, serial references by array bytes).
func New() *Tuner {
	return &Tuner{
		evals:   cache.New[fullEval](1 << 16),
		statics: cache.New[staticEval](1 << 16),
		serials: cache.New[map[string][]float64](128 << 20),
	}
}

// MemoStats exposes the evaluation cache counters.
func (t *Tuner) MemoStats() cache.Stats { return t.evals.Stats() }

// Run executes the two-tier search.  The returned Result is non-nil
// whenever the spec validates, even if no candidate completed (then
// Winner is nil and an error explains why).
func (t *Tuner) Run(ctx context.Context, spec Spec) (*Result, error) {
	s, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &Result{}
	trail := func(format string, args ...any) {
		res.Trail = append(res.Trail, fmt.Sprintf(format, args...))
	}

	cands := enumerate(&s)
	res.Counters.Candidates = len(cands)
	if s.MaxScreen > 0 && len(cands) > s.MaxScreen {
		rnd := rand.New(rand.NewSource(s.Seed))
		perm := rnd.Perm(len(cands))[:s.MaxScreen]
		sort.Ints(perm)
		sampled := make([]Candidate, 0, s.MaxScreen)
		for _, i := range perm {
			sampled = append(sampled, cands[i])
		}
		trail("subsampled %d of %d candidates (seed %d)", s.MaxScreen, len(cands), s.Seed)
		cands = sampled
	}

	// Tier 1: analytic screen over every candidate.
	screenStart := time.Now()
	entries := make([]Entry, 0, len(cands))
	for _, c := range cands {
		e := Entry{Candidate: c, Params: c.params(&s)}
		if c.Scheme == SchemeBlock {
			o := c.options()
			e.Options = &o
		}
		if ok, why := s.feasible(c); !ok {
			e.Status, e.Note = StatusInfeasible, why
			res.Counters.Infeasible++
			entries = append(entries, e)
			continue
		}
		e.Status = StatusScreened
		if s.Bench != "" {
			pred, err := modelPredict(&s, c, s.TargetN, s.TargetSteps)
			if err != nil {
				e.Status, e.Note = StatusInfeasible, err.Error()
				res.Counters.Infeasible++
				entries = append(entries, e)
				continue
			}
			e.Screen = pred
		}
		res.Counters.Screened++
		entries = append(entries, e)
	}
	res.Counters.ScreenWall = time.Since(screenStart)
	if s.Bench != "" {
		trail("screened %d candidates analytically at target %d³×%d steps in %v (%d infeasible)",
			res.Counters.Screened, s.TargetN, s.TargetSteps, res.Counters.ScreenWall.Round(time.Microsecond), res.Counters.Infeasible)
	} else {
		trail("generic source: no analytic model, full tier ranks %d feasible candidates by simulation (%d infeasible)",
			res.Counters.Screened, res.Counters.Infeasible)
	}

	// Select survivors: feasible candidates by (screen score, key).
	survivors := make([]*Entry, 0, len(entries))
	for i := range entries {
		if entries[i].Status == StatusScreened {
			survivors = append(survivors, &entries[i])
		}
	}
	sort.Slice(survivors, func(i, j int) bool {
		if survivors[i].Screen != survivors[j].Screen {
			return survivors[i].Screen < survivors[j].Screen
		}
		return survivors[i].Key() < survivors[j].Key()
	})
	if len(survivors) > s.TopK {
		survivors = survivors[:s.TopK]
	}
	if len(survivors) > 0 {
		keys := make([]string, len(survivors))
		for i, e := range survivors {
			keys[i] = e.Key()
		}
		trail("full tier: top %d by predicted cost: %v", len(survivors), keys)
	}

	// Tier 1.5 (opt-in): the static cost oracle re-ranks the analytic
	// survivors with zero simulation and forwards only the statically
	// cheapest block candidates to the full tier.
	if s.StaticScreen && len(survivors) > 0 {
		staticStart := time.Now()
		type ranked struct {
			e   *Entry
			sec float64
		}
		var blocks []ranked
		var rest []*Entry
		for _, e := range survivors {
			if e.Scheme != SchemeBlock {
				// The transpose comparison point has no compiled program
				// for the oracle to walk; it always reaches the full tier.
				rest = append(rest, e)
				continue
			}
			ev, err := t.evalStatic(ctx, &s, e.Candidate)
			if err != nil {
				// A candidate the oracle cannot compile would fail the
				// full tier's identical compile too; rank it last rather
				// than spend a simulation discovering that.
				trail("static screen: %s: %v (ranked last)", e.Key(), err)
				blocks = append(blocks, ranked{e, math.Inf(1)})
				continue
			}
			e.Static = ev.Seconds
			res.Counters.StaticEvals++
			trail("static screen: %s: %.6fs static (%.0f flops, %d msgs, %d bytes, exact=%v)",
				e.Key(), ev.Seconds, ev.Flops, ev.Msgs, ev.Bytes, ev.Exact)
			blocks = append(blocks, ranked{e, ev.Seconds})
		}
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		sort.Slice(blocks, func(i, j int) bool {
			if blocks[i].sec != blocks[j].sec {
				return blocks[i].sec < blocks[j].sec
			}
			return blocks[i].e.Key() < blocks[j].e.Key()
		})
		keep := (s.TopK + 1) / 2
		if keep < 1 {
			keep = 1
		}
		if len(blocks) > keep {
			for i, r := range blocks[keep:] {
				r.e.Note = fmt.Sprintf("static screen: ranked %d of %d block survivors, top %d simulated",
					keep+i+1, len(blocks), keep)
			}
			blocks = blocks[:keep]
		}
		kept := make([]*Entry, 0, len(blocks)+len(rest))
		for _, r := range blocks {
			kept = append(kept, r.e)
		}
		kept = append(kept, rest...)
		survivors = kept
		res.Counters.StaticWall = time.Since(staticStart)
		keys := make([]string, len(survivors))
		for i, e := range survivors {
			keys[i] = e.Key()
		}
		trail("static screen kept %d for full simulation in %v: %v",
			len(survivors), res.Counters.StaticWall.Round(time.Microsecond), keys)
	}

	// Tier 2: compile + simulate survivors in deterministic waves.
	fullStart := time.Now()
	incumbent := math.Inf(1)
	for lo := 0; lo < len(survivors); lo += s.Workers {
		wave := survivors[lo:min(lo+s.Workers, len(survivors))]
		limit := 0.0
		if !math.IsInf(incumbent, 1) {
			limit = incumbent * s.PruneFactor
		}
		var wg sync.WaitGroup
		for _, e := range wave {
			wg.Add(1)
			go func(e *Entry) {
				defer wg.Done()
				t.finishEval(ctx, &s, e, limit)
			}(e)
		}
		wg.Wait()
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		for _, e := range wave {
			res.Counters.FullEvals++
			if e.Cached {
				res.Counters.MemoHits++
			} else {
				res.Counters.MemoMisses++
			}
			switch e.Status {
			case StatusOK:
				if e.Sim < incumbent {
					incumbent = e.Sim
				}
				trail("evaluated %s: %.6fs virtual (%d msgs, %s)%s",
					e.Key(), e.Sim, e.Msgs, verifyNote(&s, e), cachedNote(e))
			case StatusPruned:
				res.Counters.Pruned++
				trail("pruned %s: %s", e.Key(), e.Note)
			default:
				trail("%s %s: %s", e.Status, e.Key(), e.Note)
			}
		}
	}
	res.Counters.FullWall = time.Since(fullStart)

	// Rank: status class, then predicted target cost, then measured
	// time, then the canonical key.
	sort.Slice(entries, func(i, j int) bool {
		a, b := &entries[i], &entries[j]
		if ra, rb := statusRank(a.Status), statusRank(b.Status); ra != rb {
			return ra < rb
		}
		if a.Screen != b.Screen {
			return a.Screen < b.Screen
		}
		if a.Sim != b.Sim {
			return a.Sim < b.Sim
		}
		return a.Key() < b.Key()
	})
	for i := range entries {
		entries[i].Rank = i + 1
	}
	res.Entries = entries
	if len(entries) > 0 && entries[0].Status == StatusOK {
		res.Winner = &res.Entries[0]
		trail("winner: %s (predicted %.4fs at target, measured %.6fs virtual at source)",
			res.Winner.Key(), res.Winner.Screen, res.Winner.Sim)
	} else {
		trail("no candidate completed evaluation")
		return res, errors.New("tune: no feasible configuration completed evaluation")
	}
	return res, nil
}

func verifyNote(s *Spec, e *Entry) string {
	if s.SkipVerify {
		return "verify skipped"
	}
	return fmt.Sprintf("verified %d arrays, max rel err %.2g", e.ComparedArrays, e.MaxRelErr)
}

func cachedNote(e *Entry) string {
	if e.Cached {
		return " [memo]"
	}
	return ""
}

// finishEval runs (or recalls) the full evaluation of one survivor and
// writes the outcome into its entry.
func (t *Tuner) finishEval(ctx context.Context, s *Spec, e *Entry, limit float64) {
	ev, cached, err := t.evalFull(ctx, s, e.Candidate, limit)
	e.Cached = cached
	switch {
	case err == nil && limit > 0 && ev.Seconds > limit:
		// A memoized result from a run with a looser (or no) limit can
		// exceed this wave's limit; classify it exactly as a fresh run
		// would have been, so leaderboards are cache-independent.
		e.Status = StatusPruned
		e.Note = fmt.Sprintf("virtual time %.6fs exceeds limit %.6fs (incumbent × %.3g)", ev.Seconds, limit, s.PruneFactor)
		e.Sim, e.Msgs, e.Bytes = ev.Seconds, ev.Msgs, ev.Bytes
	case err == nil:
		e.Sim, e.Msgs, e.Bytes = ev.Seconds, ev.Msgs, ev.Bytes
		e.MaxRelErr, e.Verified, e.ComparedArrays = ev.MaxRelErr, ev.Verified, ev.Compared
		if !s.SkipVerify && !ev.Verified {
			e.Status = StatusMismatch
			e.Note = fmt.Sprintf("max rel err %.3g exceeds tol %.3g vs serial reference", ev.MaxRelErr, s.VerifyTol)
			return
		}
		e.Status = StatusOK
		if s.Bench != "" {
			if pred, perr := modelPredict(s, e.Candidate, s.N, s.Steps); perr == nil && pred > 0 {
				e.ModelRatio = ev.Seconds / pred
			}
		}
	case errors.Is(err, mpsim.ErrAborted):
		e.Status = StatusPruned
		e.Note = fmt.Sprintf("abandoned at virtual limit %.6fs (incumbent × %.3g): %v", limit, s.PruneFactor, err)
	default:
		e.Status = StatusError
		e.Note = err.Error()
	}
}

// machineKey fingerprints the cost-model fields of a machine config
// (limits excluded: they don't change what a completed run measures).
func machineKey(cfg mpsim.Config, procs int) string {
	return fmt.Sprintf("%g/%g/%g/%g/%g/p%d",
		cfg.FlopTime, cfg.Latency, cfg.SendOverhead, cfg.RecvOverhead, cfg.GapPerByte, procs)
}

func (s *Spec) verifyKey() string {
	if s.SkipVerify {
		return "noverify"
	}
	return fmt.Sprintf("verify:%s:%v tol:%g", s.Bench, s.VerifyArrays, s.VerifyTol)
}

// evalFull memoizes the compile+simulate+verify of one candidate.
// Errors — including prune aborts — are never cached, so a pruned
// candidate re-evaluates (and re-prunes deterministically) next time.
func (t *Tuner) evalFull(ctx context.Context, s *Spec, c Candidate, limit float64) (fullEval, bool, error) {
	var key string
	if c.Scheme == SchemeTranspose {
		key = cache.Key("eval", SchemeTranspose, s.Bench,
			strconv.Itoa(s.N), strconv.Itoa(s.Steps), strconv.Itoa(s.Procs),
			machineKey(s.Machine, s.Procs), s.verifyKey())
	} else {
		key = cache.Key("eval", SchemeBlock,
			passes.FingerprintKey(s.Source, c.params(s), c.options()),
			machineKey(s.Machine, s.Procs), s.verifyKey())
	}
	return t.evals.GetOrCompute(ctx, key, func(ctx context.Context) (fullEval, int64, error) {
		ev, err := t.evalOnce(ctx, s, c, limit)
		return ev, 1, err
	})
}

func (t *Tuner) evalOnce(ctx context.Context, s *Spec, c Candidate, limit float64) (fullEval, error) {
	cfg := s.Machine
	cfg.TimeLimit = limit
	cfg.WallLimit = s.EvalWallLimit

	var ev fullEval
	var ref map[string][]float64
	if !s.SkipVerify {
		var err error
		if ref, err = t.serialRef(ctx, s, c); err != nil {
			return ev, fmt.Errorf("serial reference: %w", err)
		}
	}

	arrays := map[string][]float64{}
	if c.Scheme == SchemeTranspose {
		run, err := nas.RunTranspose(s.Bench, s.N, s.Steps, s.Procs, cfg)
		if err != nil {
			return ev, err
		}
		ev.Seconds = run.Machine.Time
		ev.Msgs = run.Machine.TotalMessages()
		ev.Bytes = run.Machine.TotalBytes()
		// The hand-coded transpose exposes the solution and the
		// residual in the serial layout; the comparison below checks
		// whichever of them the verify set covers.
		arrays["u"] = run.U
		if s.Bench == "sp" {
			arrays["rhs"] = run.R
		} else {
			arrays["r"] = run.R
		}
	} else {
		prog, err := spmd.CompileSourceCtx(ctx, s.Source, c.params(s), c.options())
		if err != nil {
			return ev, fmt.Errorf("compile: %w", err)
		}
		if testCorrupt != nil {
			testCorrupt(prog)
		}
		// Safety gate: a candidate that fails translation validation never
		// reaches the leaderboard, whatever its virtual time.  The proof
		// is recomputed here (not read off the compile) because an
		// ablation may have disabled the in-pipeline verify pass, and the
		// test hook above can invalidate the compiled analyses.
		if rep, verr := prog.Verify(); verr != nil {
			return ev, fmt.Errorf("safety gate: %w", verr)
		} else if !rep.Clean() {
			errs := rep.Errors()
			return ev, fmt.Errorf("safety gate: candidate fails %d obligations: %s", len(errs), errs[0])
		}
		cfg.Procs = prog.Grid.Size()
		engine, err := spmd.ParseEngine(s.Engine)
		if err != nil {
			return ev, err
		}
		er, err := prog.ExecuteEngine(cfg, engine)
		if err != nil {
			return ev, err
		}
		ev.Seconds = er.Machine.Time
		ev.Msgs = er.Machine.TotalMessages()
		ev.Bytes = er.Machine.TotalBytes()
		for name := range ref {
			data, _, _, err := er.Global(name)
			if err != nil {
				return ev, fmt.Errorf("verify: %w", err)
			}
			arrays[name] = data
		}
	}
	if s.SkipVerify {
		return ev, nil
	}

	ev.Verified = true
	for _, name := range sortedArrayKeys(arrays) {
		want, ok := ref[name]
		if !ok {
			continue // transpose exposes a superset of the verify set
		}
		got := arrays[name]
		if len(got) != len(want) {
			return ev, fmt.Errorf("verify: array %q has %d elements, serial has %d", name, len(got), len(want))
		}
		ev.Compared++
		if e := maxRelErr(got, want); e > ev.MaxRelErr {
			ev.MaxRelErr = e
		}
	}
	if ev.Compared == 0 {
		return ev, errors.New("verify: no arrays in common with the serial reference")
	}
	if ev.MaxRelErr > s.VerifyTol {
		ev.Verified = false
	}
	return ev, nil
}

// staticParams binds the candidate's parameters at the static tier's
// costing size.  Bench-mode sources expose their problem size as the
// N/STEPS parameters, so the oracle costs the candidate at the
// *target* size — the size the analytic screen ranks for and the
// simulator cannot reach; the tiers then agree on what "cheapest"
// means.  Generic sources are costed at the source size.
func staticParams(s *Spec, c Candidate) map[string]int {
	p := c.params(s)
	if s.Bench != "" {
		p["N"], p["STEPS"] = s.TargetN, s.TargetSteps
	}
	return p
}

// evalStatic memoizes the zero-simulation costing of one block
// candidate: compile it at the static costing size, run the static
// cost oracle over the compiled program, and reduce the exact per-rank
// counters to a ranking time.  The memo key is the candidate's compile
// fingerprint plus the machine's cost parameters — the same identity
// the full tier uses, minus the verify configuration (the oracle never
// touches numerics).
func (t *Tuner) evalStatic(ctx context.Context, s *Spec, c Candidate) (staticEval, error) {
	key := cache.Key("static",
		passes.FingerprintKey(s.Source, staticParams(s, c), c.options()),
		machineKey(s.Machine, s.Procs))
	ev, _, err := t.statics.GetOrCompute(ctx, key, func(ctx context.Context) (staticEval, int64, error) {
		var ev staticEval
		prog, err := spmd.CompileSourceCtx(ctx, s.Source, staticParams(s, c), c.options())
		if err != nil {
			return ev, 0, fmt.Errorf("compile: %w", err)
		}
		cost, err := prog.PredictCost()
		if err != nil {
			return ev, 0, fmt.Errorf("predict: %w", err)
		}
		ev.Seconds = staticSeconds(cost, s.Machine)
		ev.Flops = cost.TotalFlops()
		ev.Msgs = cost.TotalMessages()
		ev.Bytes = cost.TotalBytes()
		ev.Exact = cost.Exact
		return ev, 1, nil
	})
	return ev, err
}

// staticSeconds converts the oracle's per-rank counters into a ranking
// time under the machine's cost parameters: the aggregate work — every
// rank's flops, send and receive overheads, wire latency, per-byte gap,
// and shared-memory pulls — divided by the machine width.  Under the
// coarse-grain pipelined schedule the machine runs throughput-bound,
// so the steady-state volume bound is the stable discriminator between
// grid shapes (a squarer grid moves less halo surface); wavefront fill
// and load imbalance are second-order there.  This is a ranking
// heuristic, not the simulator — which is exactly why the survivors it
// forwards are still measured by the full tier.
func staticSeconds(cost *analysis.Cost, cfg mpsim.Config) float64 {
	var total float64
	for _, f := range cost.Flops {
		total += f * cfg.FlopTime
	}
	for _, m := range cost.SentMsgs {
		total += float64(m) * (cfg.SendOverhead + cfg.Latency)
	}
	for _, b := range cost.SentBytes {
		total += float64(b) * cfg.GapPerByte
	}
	for _, m := range cost.RecvMsgs {
		total += float64(m) * cfg.RecvOverhead
	}
	for _, p := range cost.Pulls {
		total += float64(p) * cfg.Latency
	}
	for _, b := range cost.PulledBytes {
		total += float64(b) * cfg.GapPerByte
	}
	if cost.Ranks > 0 {
		total /= float64(cost.Ranks)
	}
	return total
}

func sortedArrayKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// serialRef computes (once) the serial reference arrays for the
// candidate's parameter binding.  The cache key drops the grid-shape
// parameters — they only steer directives — so every grid shape shares
// one reference run.
func (t *Tuner) serialRef(ctx context.Context, s *Spec, c Candidate) (map[string][]float64, error) {
	params := c.params(s)
	keyParts := []string{"serial", s.Source}
	for _, k := range sortedKeys(params) {
		if k == s.GridParams[0] || k == s.GridParams[1] {
			continue
		}
		keyParts = append(keyParts, fmt.Sprintf("%s=%d", k, params[k]))
	}
	ref, _, err := t.serials.GetOrCompute(ctx, cache.Key(keyParts...), func(ctx context.Context) (map[string][]float64, int64, error) {
		prog, err := parser.Parse(s.Source)
		if err != nil {
			return nil, 0, err
		}
		sr, err := spmd.RunSerial(prog, params)
		if err != nil {
			return nil, 0, err
		}
		names := s.VerifyArrays
		if len(names) == 0 {
			if s.Bench != "" {
				// The benchmark's solution array is the meaningful
				// output (matching the repo's existing verification
				// tests); generic sources check everything.
				names = []string{"u"}
			} else {
				names = sr.Names()
			}
		}
		out := map[string][]float64{}
		var size int64
		for _, n := range names {
			data, _, _, err := sr.Array(n)
			if err != nil {
				if len(s.VerifyArrays) > 0 {
					return nil, 0, err
				}
				continue
			}
			cp := append([]float64{}, data...)
			out[n] = cp
			size += int64(len(cp) * 8)
		}
		return out, size, nil
	})
	return ref, err
}

func maxRelErr(got, want []float64) float64 {
	var worst float64
	for i := range got {
		denom := math.Abs(want[i])
		if denom < 1 {
			denom = 1
		}
		if e := math.Abs(got[i]-want[i]) / denom; e > worst {
			worst = e
		}
	}
	return worst
}
