package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"dhpf"
	"dhpf/internal/nas"
	"dhpf/internal/store"
)

func openStoreT(t *testing.T, path string) *store.Store {
	t.Helper()
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRestartWarmByteIdentical: a store-backed server, restarted (new
// Server over a reopened journal), serves a previously compiled
// fingerprint from disk — zero compiles, Cached, and a response
// byte-identical to the pre-restart warm hit, including /v1/explain's
// full relabelled pass table.
func TestRestartWarmByteIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dhpfd.store")
	src := nas.SPSource(12, 1, 2, 2)
	req := dhpf.CompileRequest{Source: src}
	ctx := context.Background()

	st := openStoreT(t, path)
	_, client := newTestServer(t, Config{Store: st})
	if _, err := client.Compile(ctx, req); err != nil {
		t.Fatalf("priming compile: %v", err)
	}
	warm, err := client.Compile(ctx, req) // in-memory warm hit: the reference response
	if err != nil {
		t.Fatal(err)
	}
	explain, err := client.Explain(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh server, fresh in-memory tiers, reopened journal.
	st2 := openStoreT(t, path)
	srv2, client2 := newTestServer(t, Config{Store: st2})
	warm2, err := client2.Compile(ctx, req)
	if err != nil {
		t.Fatalf("restart-warm compile: %v", err)
	}
	if !warm2.Cached {
		t.Error("restart-warm compile not served as cached")
	}
	if n := srv2.compiles.Load(); n != 0 {
		t.Errorf("restart-warm compile did %d compiles, want 0", n)
	}
	if got, want := mustJSON(t, warm2), mustJSON(t, warm); got != want {
		t.Errorf("restart-warm response differs from pre-restart warm hit:\n got %s\nwant %s", got, want)
	}
	explain2, err := client2.Explain(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, explain2), mustJSON(t, explain); got != want {
		t.Errorf("restart-warm explain differs:\n got %s\nwant %s", got, want)
	}
	stats := srv2.Stats()
	if stats.Cache.BackingHits == 0 {
		t.Errorf("no program thawed from the store: %+v", stats.Cache)
	}
	if stats.Store == nil || stats.Store.ProgramHits == 0 {
		t.Errorf("store stats missing program hit: %+v", stats.Store)
	}
}

// TestRestartWarmVerifyAndRun: the memoized verify report survives a
// restart (served with zero compiles), and /v1/run on a thawed entry
// revives the program and reproduces the pre-restart execution exactly.
func TestRestartWarmVerifyAndRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dhpfd.store")
	src := nas.SPSource(12, 1, 2, 2)
	ctx := context.Background()

	st := openStoreT(t, path)
	_, client := newTestServer(t, Config{Store: st})
	verify, err := client.Verify(ctx, dhpf.VerifyRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	run, err := client.Run(ctx, dhpf.RunRequest{Source: src, Arrays: []string{"u"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStoreT(t, path)
	srv2, client2 := newTestServer(t, Config{Store: st2})
	verify2, err := client2.Verify(ctx, dhpf.VerifyRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if !verify2.Cached {
		t.Error("restart-warm verify not served as cached")
	}
	if n := srv2.compiles.Load(); n != 0 {
		t.Errorf("restart-warm verify did %d compiles, want 0", n)
	}
	verify.Cached = verify2.Cached // only the cache flag may differ
	if got, want := mustJSON(t, verify2), mustJSON(t, verify); got != want {
		t.Errorf("restart-warm verify differs:\n got %s\nwant %s", got, want)
	}

	run2, err := client2.Run(ctx, dhpf.RunRequest{Source: src, Arrays: []string{"u"}})
	if err != nil {
		t.Fatal(err)
	}
	if n := srv2.compiles.Load(); n != 1 {
		t.Errorf("run on a thawed entry did %d compiles, want exactly 1 (the revival)", n)
	}
	run.Cached = run2.Cached
	if got, want := mustJSON(t, run2), mustJSON(t, run); got != want {
		t.Errorf("restart-warm run differs:\n got %s\nwant %s", got, want)
	}
	// The revival compiled through the persisted artifact tier: every
	// procedure's analyses thawed rather than recomputed.
	if as := srv2.Stats().Artifacts; as.BackingHits == 0 {
		t.Errorf("revival did not thaw artifacts from the store: %+v", as)
	}
}

// TestRestartWarmAnalyze: the memoized static-analysis report is
// persisted next to the program entry and survives a restart — the
// repeat /v1/analyze is answered from disk with zero compiles and a
// byte-identical report (including the cost prediction).
func TestRestartWarmAnalyze(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dhpfd.store")
	src := nas.SPSource(12, 1, 2, 2)
	ctx := context.Background()

	st := openStoreT(t, path)
	_, client := newTestServer(t, Config{Store: st})
	first, err := client.Analyze(ctx, dhpf.AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cost == nil || !first.Cost.Exact {
		t.Fatalf("SP analyze missing exact cost: %+v", first.Cost)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStoreT(t, path)
	srv2, client2 := newTestServer(t, Config{Store: st2})
	second, err := client2.Analyze(ctx, dhpf.AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("restart-warm analyze not served as cached")
	}
	if n := srv2.compiles.Load(); n != 0 {
		t.Errorf("restart-warm analyze did %d compiles, want 0", n)
	}
	first.Cached = second.Cached // only the cache flag may differ
	if got, want := mustJSON(t, second), mustJSON(t, first); got != want {
		t.Errorf("restart-warm analyze differs:\n got %s\nwant %s", got, want)
	}
}

// TestRestartWarmTune: a completed tune leaderboard is persisted by
// request fingerprint, so a restarted server answers the identical
// /v1/tune request from disk — same ranked entries, same winner (with
// its backend), no search re-run — and the recall is visible in the
// trail and the store counters.
func TestRestartWarmTune(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dhpfd.store")
	req := dhpf.TuneRequest{
		Source: nas.SPSource(12, 1, 2, 2),
		TuneOptions: dhpf.TuneOptions{
			Bench: "sp", N: 12, Steps: 1, Procs: 4,
			Grids:       [][2]int{{2, 2}},
			Grains:      []int{8},
			Backends:    []string{"mp", "shm"},
			NoTranspose: true,
			TopK:        2,
		},
	}
	ctx := context.Background()

	st := openStoreT(t, path)
	srv, client := newTestServer(t, Config{Store: st})
	first, err := client.Tune(ctx, req)
	if err != nil {
		t.Fatalf("priming tune: %v", err)
	}
	if first.Winner == nil || first.Winner.Backend != "shm" {
		t.Fatalf("backend search should crown the shm candidate: %+v", first.Winner)
	}
	if ss := srv.Stats().Store; ss == nil || ss.TuneWrites != 1 {
		t.Fatalf("completed leaderboard not persisted: %+v", ss)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStoreT(t, path)
	srv2, client2 := newTestServer(t, Config{Store: st2})
	warm, err := client2.Tune(ctx, req)
	if err != nil {
		t.Fatalf("restart-warm tune: %v", err)
	}
	if n := len(warm.Trail); n == 0 || warm.Trail[n-1] != "leaderboard recalled from durable store" {
		t.Fatalf("warm tune trail does not mark the recall: %v", warm.Trail)
	}
	// Everything except the appended recall line must be byte-identical
	// to the original run — including wall-time counters, which are the
	// *original* search's effort, not a re-run's.
	warm.Trail = warm.Trail[:len(warm.Trail)-1]
	if got, want := mustJSON(t, warm), mustJSON(t, first); got != want {
		t.Errorf("restart-warm tune differs:\n got %s\nwant %s", got, want)
	}
	ss := srv2.Stats().Store
	if ss == nil || ss.TuneHits != 1 || ss.TuneWrites != 0 {
		t.Errorf("warm tune should be one store recall and no write: %+v", ss)
	}
	if n := srv2.compiles.Load(); n != 0 {
		t.Errorf("warm tune did %d compiles, want 0", n)
	}

	// A different spec is a different fingerprint: it must miss and run.
	req2 := req
	req2.TopK = 1
	if _, err := client2.Tune(ctx, req2); err != nil {
		t.Fatalf("modified tune: %v", err)
	}
	if ss := srv2.Stats().Store; ss.TuneMisses == 0 || ss.TuneWrites != 1 {
		t.Errorf("modified spec should miss and persist: %+v", ss)
	}
}

// fleetT starts n servers that know each other as peers, each with its
// own store, and returns them with their clients and base URLs.
func fleetT(t *testing.T, n int) ([]*Server, []*dhpf.Client, []string) {
	t.Helper()
	srvs := make([]*Server, n)
	peers := make([]string, n)
	for i := range peers {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			srvs[i].Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		peers[i] = ts.URL
	}
	clients := make([]*dhpf.Client, n)
	for i := range srvs {
		st := openStoreT(t, filepath.Join(t.TempDir(), "store"))
		srvs[i] = New(Config{Store: st, Peers: peers, Self: i})
		clients[i] = dhpf.NewClient(peers[i])
	}
	return srvs, clients, peers
}

// TestFleetPeerFetch: in a fleet, a replica that misses on a
// fingerprint another member owns fetches the owner's entry instead of
// compiling — identical response, zero local pass work — and installs
// it durably so its next restart is warm without re-fetching.
func TestFleetPeerFetch(t *testing.T) {
	srvs, clients, peers := fleetT(t, 3)
	src := nas.SPSource(12, 1, 2, 2)
	req := dhpf.CompileRequest{Source: src}
	ctx := context.Background()

	fp := dhpf.Fingerprint(src, nil, dhpf.DefaultOptions())
	owner := Owner(peers, fp)
	replica := (owner + 1) % len(peers)

	if primed, err := clients[owner].Compile(ctx, req); err != nil {
		t.Fatalf("priming the owner: %v", err)
	} else if primed.Fingerprint != fp {
		t.Fatalf("client-side fingerprint %s != server's %s", fp, primed.Fingerprint)
	}
	// The owner's own warm hit is the reference response: cache-form pass
	// stats, like anything served without pass work.
	ref, err := clients[owner].Compile(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	got, err := clients[replica].Compile(ctx, req)
	if err != nil {
		t.Fatalf("replica compile: %v", err)
	}
	if !got.Cached {
		t.Error("replica compile not served as cached")
	}
	if n := srvs[replica].compiles.Load(); n != 0 {
		t.Errorf("replica did %d compiles, want 0 (peer fetch)", n)
	}
	if mustJSON(t, got) != mustJSON(t, ref) {
		t.Error("replica response differs from the owner's")
	}

	rs := srvs[replica].Stats()
	if rs.Peer == nil || rs.Peer.Hits == 0 {
		t.Errorf("replica shows no peer hits: %+v", rs.Peer)
	}
	os := srvs[owner].Stats()
	if os.Peer == nil || os.Peer.Served == 0 {
		t.Errorf("owner shows no served fetches: %+v", os.Peer)
	}
	// The fetched entry became durable locally.
	if rs.Store == nil || rs.Store.ProgramWrites == 0 && rs.Store.ManifestPuts == 0 {
		t.Errorf("replica did not persist the fetched entry: %+v", rs.Store)
	}
}

// TestPeerFetchNeverCompiles: a fetch for an unknown fingerprint is a
// clean miss — the receiver must not compile on another replica's
// behalf (that would cascade cold misses across the fleet).
func TestPeerFetchNeverCompiles(t *testing.T) {
	srv, client := newTestServer(t, Config{Store: openStoreT(t, filepath.Join(t.TempDir(), "store"))})
	resp, err := client.PeerFetch(context.Background(), dhpf.PeerFetchRequest{Fingerprint: "no-such-fp"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Found || resp.Entry != nil {
		t.Errorf("phantom entry: %+v", resp)
	}
	if n := srv.compiles.Load(); n != 0 {
		t.Errorf("peer fetch compiled (%d)", n)
	}
}

// TestRingDeterministicAndBalanced: every member computes the same
// owner for every key, and ownership over many keys is roughly uniform.
func TestRingDeterministicAndBalanced(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, r2 := newHashRing(peers), newHashRing(peers)
	counts := make([]int, len(peers))
	const keys = 3000
	for i := 0; i < keys; i++ {
		key := nas.SPSource(12, 1, 2, 2) + string(rune(i))
		o := r1.owner(key)
		if o != r2.owner(key) {
			t.Fatalf("rings disagree on key %d", i)
		}
		if o != Owner(peers, key) {
			t.Fatalf("Owner disagrees with ring on key %d", i)
		}
		counts[o]++
	}
	for i, c := range counts {
		if c < keys/len(peers)/2 || c > keys*2/len(peers) {
			t.Errorf("peer %d owns %d of %d keys (skewed ring): %v", i, c, keys, counts)
		}
	}
	if Owner(nil, "x") != -1 {
		t.Error("empty fleet should have no owner")
	}
}

// TestSelfOutOfRangeDisablesFleet: a misconfigured Self must not wedge
// the server into fetching from itself; the fleet tier shuts off.
func TestSelfOutOfRangeDisablesFleet(t *testing.T) {
	srv := New(Config{Peers: []string{"http://a:1", "http://b:2"}, Self: 7})
	if srv.durable != nil && srv.durable.ring != nil {
		t.Error("out-of-range Self left the ring enabled")
	}
	if srv.Stats().Peer != nil {
		t.Error("stats advertise a disabled fleet")
	}
}
