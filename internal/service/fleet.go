// Fleet sharding: a consistent-hash ring over the configured peer list
// routes each fingerprint to one owning replica, and /v1/peer/fetch
// lets a non-owner pull the owner's stored entry instead of compiling
// cold.  Every replica can still serve any request — ownership only
// decides who is asked first on a miss — so the fleet needs no
// membership protocol beyond an identical static peer list on every
// member.
package service

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"net/http"
	"sort"
	"strconv"

	"dhpf"
)

// vnodesPerPeer spreads each peer over the ring so ownership stays
// near-uniform for small fleets.
const vnodesPerPeer = 64

// hashRing is a fixed consistent-hash ring: points are the first 8
// bytes of sha256("<peer>#<vnode>"), and a key is owned by the first
// point at or after sha256(key), wrapping.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	point uint64
	idx   int
}

func newHashRing(peers []string) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(peers)*vnodesPerPeer)}
	for i, peer := range peers {
		for v := 0; v < vnodesPerPeer; v++ {
			h := sha256.Sum256([]byte(peer + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{point: binary.BigEndian.Uint64(h[:8]), idx: i})
		}
	}
	// Ties broken by index so every member sorts identically.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].point != r.points[b].point {
			return r.points[a].point < r.points[b].point
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

func (r *hashRing) owner(key string) int {
	h := sha256.Sum256([]byte(key))
	p := binary.BigEndian.Uint64(h[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= p })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].idx
}

// Owner returns which member of peers owns fingerprint on the fleet's
// consistent-hash ring (-1 for an empty fleet).  Exported so fleet
// tooling (cmd/dhpfd loadgen -fleet) can aim requests at — or away
// from — a fingerprint's owner using the same routing as the servers.
func Owner(peers []string, fingerprint string) int {
	if len(peers) == 0 {
		return -1
	}
	return newHashRing(peers).owner(fingerprint)
}

// handlePeerFetch serves this replica's stored copy of a fingerprint to
// a fleet peer: memory cache first, then the local store.  It never
// compiles and never forwards to other peers, so the fleet's fetch
// graph has depth one and cannot cycle.
func (s *Server) handlePeerFetch(w http.ResponseWriter, r *http.Request) {
	var req dhpf.PeerFetchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Fingerprint == "" {
		s.fail(w, http.StatusUnprocessableEntity, errors.New("peer fetch has no fingerprint"))
		return
	}
	ent, ok := s.cache.Get(req.Fingerprint)
	if !ok && s.durable != nil && s.durable.st != nil {
		ent, _, ok = s.durable.loadLocal(req.Fingerprint)
	}
	if !ok {
		s.ok(w, dhpf.PeerFetchResponse{})
		return
	}
	s.peerServed.Add(1)
	s.ok(w, dhpf.PeerFetchResponse{Found: true, Entry: entryToWire(ent)})
}
