// Package service is the dhpfd compile service: an HTTP/JSON server over
// the root dhpf API that turns the compiler into a served artifact.  It
// fronts every compilation with a content-addressed program cache
// (internal/cache) keyed by dhpf.Fingerprint, so identical requests —
// the dominant shape of configuration sweeps and ablation studies — hit
// a stored program or coalesce onto an identical in-flight compile, and
// bounds the work it accepts with a fixed worker pool plus a bounded
// queue (full queue ⇒ 429).  Per-request deadlines are enforced through
// context cancellation at pass boundaries (passes.RunCtx), so an
// abandoned compile stops between passes and never corrupts the cache.
//
// Endpoints (all JSON; wire types in the root package):
//
//	POST /v1/compile        report + per-rank node programs + pass stats
//	POST /v1/compile/batch  many compiles sharing one artifact store
//	POST /v1/explain        the cmd/dhpfc -explain table
//	POST /v1/run            execute on a named machine ("sp2" or "sp2:N")
//	POST /v1/verify         translation-validation report (the -lint surface)
//	POST /v1/tune           auto-tune distributions/granularity/ablations
//	GET  /v1/stats          cache + request counters
//	GET  /healthz           liveness
//
// Beneath the whole-program cache sits a per-procedure artifact store
// (dhpf.Incremental): a warm edit — same program, one procedure changed
// — misses the program cache but thaws the dependence graphs,
// communication plans and verification fragments of every unchanged
// procedure, re-analyzing only the edited ones.  /v1/stats reports the
// artifact tier's hit/miss/dirty counters alongside the program cache's.
//
// A tune request occupies one worker slot for its whole duration (its
// internal evaluation parallelism is capped at the pool size), so tuning
// shares the same 429 backpressure and deadline regime as compiles.
//
// With Config.Store both caches gain a durable tier (internal/store):
// compiled programs and per-procedure artifacts are written through to
// an append-only chunk journal, so a restarted server serves previously
// seen fingerprints byte-identically with zero pass work.  With
// Config.Peers the server joins a static fleet: fingerprints are
// sharded over the members by consistent hashing, and a replica that
// misses locally asks the owning peer (POST /v1/peer/fetch) for its
// stored entry before compiling cold.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dhpf"
	"dhpf/internal/cache"
	"dhpf/internal/passes"
	"dhpf/internal/store"
)

// ErrBusy is returned (as HTTP 429) when the compile queue is full.
var ErrBusy = errors.New("service: compile queue full")

// Config sizes the service.  Zero fields take the defaults.
type Config struct {
	// Workers bounds concurrent compiles (default 4).  Cache hits and
	// coalesced requests never occupy a worker.
	Workers int
	// QueueDepth bounds compiles waiting for a worker (default 64);
	// beyond Workers+QueueDepth new compiles are rejected with 429.
	QueueDepth int
	// CacheBytes is the program cache budget (default 256 MiB),
	// charged per entry as source + rendered-report size.
	CacheBytes int64
	// ArtifactBytes is the per-procedure artifact store budget backing
	// warm-edit recompiles (default 64 MiB).
	ArtifactBytes int64
	// RequestTimeout bounds each request's compile+render time
	// (default 60s).  Hitting it aborts the compile at the next pass
	// boundary and returns 504.
	RequestTimeout time.Duration
	// Logger receives one structured line per request (nil = silent).
	Logger *slog.Logger
	// Store, when set, is the durable chunk store backing both caches:
	// compiled programs and frozen artifacts survive restarts.  The
	// server does not close it.
	Store *store.Store
	// Peers is the fleet membership as base URLs (including this
	// server's own), identical and identically ordered on every member;
	// Self is this server's index in it.  With fewer than two peers the
	// fleet tier is off.
	Peers []string
	Self  int
	// PeerTimeout bounds one peer-fetch round trip (default 5s); a slow
	// or dead peer costs at most this before the local cold compile.
	PeerTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.ArtifactBytes <= 0 {
		c.ArtifactBytes = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// testHooks lets tests deterministically hold a compile inside a worker
// slot (nil in production).
var testPreCompile func(ctx context.Context)

// program is one cache entry: the compiled program plus its rendered
// artifacts.  The report is rendered once at insert (rendering re-runs
// transfer planning per communication event, which would otherwise
// dominate warm-hit latency); node programs are rendered per rank on
// first request and memoized.
//
// An entry thawed from the durable store or fetched from a fleet peer
// has prog == nil: every node program is pre-rendered in nodes and the
// pass records live in stats, so compile/explain/verify requests are
// served without a live program.  /v1/run (and a first /v1/verify on an
// entry persisted before its report was computed) revive the entry with
// one artifact-warm compile — see Server.liveProgram.
type program struct {
	report string
	ranks  int

	mu         sync.Mutex
	prog       *dhpf.Program
	nodes      map[int]string
	stats      []dhpf.PassStat // cache-hit form; only for thawed entries
	verifyRep  *dhpf.VerifyReport
	analyzeRep *dhpf.AnalyzeReport
}

func newProgram(p *dhpf.Program) *program {
	return &program{prog: p, report: p.Report(), ranks: p.Ranks(), nodes: map[int]string{}}
}

// live returns the entry's compiled program, or nil for a thawed entry
// that has not been revived.
func (e *program) live() *dhpf.Program {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.prog
}

func (e *program) nodeProgram(rank int) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.nodes[rank]; ok {
		return s
	}
	if e.prog == nil {
		// Thawed entries carry every rank; an absent one means the rank
		// is out of range, which compileOne rejects before asking.
		return ""
	}
	s := e.prog.NodeProgram(rank)
	e.nodes[rank] = s
	return s
}

// verify memoizes the translation-validation report: the proof is pure
// over the compiled analyses, so repeated /v1/verify requests on one
// fingerprint pay the set algebra once.  Callers must revive a thawed
// entry first when no report is memoized (Server.liveProgram).
func (e *program) verify() (*dhpf.VerifyReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.verifyRep != nil {
		return e.verifyRep, nil
	}
	if e.prog == nil {
		return nil, errors.New("service: verify on a thawed entry without a live program")
	}
	rep, err := e.prog.Verify()
	if err != nil {
		return nil, err
	}
	e.verifyRep = &rep
	return e.verifyRep, nil
}

// analyze memoizes the static-analysis report: summaries, dataflow
// diagnostics and the cost oracle's prediction are pure over the
// compiled facts, so repeated /v1/analyze requests on one fingerprint
// pay the set algebra once.  Callers must revive a thawed entry first
// when no report is memoized (Server.liveProgram).
func (e *program) analyze() (*dhpf.AnalyzeReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.analyzeRep != nil {
		return e.analyzeRep, nil
	}
	if e.prog == nil {
		return nil, errors.New("service: analyze on a thawed entry without a live program")
	}
	rep, err := e.prog.Analyze()
	if err != nil {
		return nil, err
	}
	e.analyzeRep = &rep
	return e.analyzeRep, nil
}

// Server is one compile service instance.
type Server struct {
	cfg   Config
	cache *cache.Cache[*program]
	// inc compiles through the per-procedure artifact store: program-cache
	// misses whose procedures are mostly unchanged (warm edits) reuse the
	// clean procedures' frozen analyses.
	inc *dhpf.Incremental
	// tuner serves /v1/tune; its memo caches live as long as the server,
	// so repeated tune requests reuse full evaluations.
	tuner *dhpf.Tuner
	// tokens is the worker pool: holding a token = compiling.
	tokens chan struct{}
	// pending counts compiles holding or waiting for a token; above
	// Workers+QueueDepth new compiles are rejected.
	pending atomic.Int64
	start   time.Time
	// durable is the program cache's persistent tier (local store and/or
	// fleet peers); nil when neither is configured.
	durable *durable

	requests   atomic.Int64
	active     atomic.Int64
	compiles   atomic.Int64
	errCount   atomic.Int64
	rejected   atomic.Int64
	timeouts   atomic.Int64
	peerServed atomic.Int64
}

// New returns a server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	peers := cfg.Peers
	if len(peers) > 1 && (cfg.Self < 0 || cfg.Self >= len(peers)) {
		cfg.Logger.Warn("service: Self is not an index into Peers; fleet tier disabled",
			"self", cfg.Self, "peers", len(peers))
		peers = nil
	}
	s := &Server{
		cfg:    cfg,
		cache:  cache.New[*program](cfg.CacheBytes),
		inc:    dhpf.NewIncremental(cfg.ArtifactBytes),
		tuner:  dhpf.NewTuner(),
		tokens: make(chan struct{}, cfg.Workers),
		start:  time.Now(),
	}
	if cfg.Store != nil {
		// The artifact tier persists too, so even programs evicted from
		// the store (or never seen here) recompile artifact-warm.
		s.inc.Persist(cfg.Store)
	}
	if cfg.Store != nil || len(peers) > 1 {
		s.durable = &durable{
			st:      cfg.Store,
			peers:   peers,
			self:    cfg.Self,
			client:  &http.Client{Timeout: cfg.PeerTimeout},
			timeout: cfg.PeerTimeout,
		}
		if len(peers) > 1 {
			s.durable.ring = newHashRing(peers)
		}
		s.cache.SetBacking(s.durable)
	}
	return s
}

// Handler returns the service's HTTP handler (routing + request logs).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/compile/batch", s.handleCompileBatch)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/tune", s.handleTune)
	mux.HandleFunc("POST /v1/peer/fetch", s.handlePeerFetch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s.logged(mux)
}

// logged wraps the mux with counters and one structured log line per
// request.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.active.Add(1)
		defer s.active.Add(-1)
		lw := &loggingWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(lw, r)
		s.cfg.Logger.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", lw.status, "bytes", lw.bytes,
			"dur", time.Since(t0).Round(time.Microsecond).String())
	})
}

type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *loggingWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *loggingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Stats snapshots the cache and request counters.
func (s *Server) Stats() dhpf.StatsResponse {
	cs := s.cache.Stats()
	as := s.inc.ArtifactStats()
	resp := dhpf.StatsResponse{
		Artifacts: dhpf.ArtifactCacheStats{
			Hits:        as.Hits,
			Misses:      as.Misses,
			BackingHits: as.BackingHits,
			Dirty:       as.Dirty,
			Evictions:   as.Evictions,
			Entries:     as.Entries,
			SizeBytes:   as.SizeBytes,
			MaxBytes:    as.MaxBytes,
		},
		Cache: dhpf.CacheStats{
			Hits:              cs.Hits,
			Misses:            cs.Misses,
			InflightCoalesced: cs.InflightCoalesced,
			BackingHits:       cs.BackingHits,
			Evictions:         cs.Evictions,
			Entries:           cs.Entries,
			SizeBytes:         cs.SizeBytes,
			MaxBytes:          cs.MaxBytes,
		},
		Server: dhpf.ServerStats{
			Requests:   s.requests.Load(),
			Active:     s.active.Load(),
			Compiles:   s.compiles.Load(),
			Errors:     s.errCount.Load(),
			Rejected:   s.rejected.Load(),
			Timeouts:   s.timeouts.Load(),
			Workers:    s.cfg.Workers,
			QueueDepth: s.cfg.QueueDepth,
			UptimeMS:   time.Since(s.start).Milliseconds(),
		},
	}
	if s.durable != nil {
		resp.Store = s.durable.storeStats()
		if s.durable.ring != nil {
			resp.Peer = &dhpf.PeerStats{
				Self:   s.durable.self,
				Peers:  len(s.durable.peers),
				Hits:   s.durable.peerHits.Load(),
				Misses: s.durable.peerMisses.Load(),
				Errors: s.durable.peerErrors.Load(),
				Served: s.peerServed.Load(),
			}
		}
	}
	return resp
}

// withWorker runs fn inside one worker slot, applying the queue's
// backpressure: above Workers+QueueDepth pending holders it rejects
// with ErrBusy, and a context cancelled while queued returns its error.
// Shared by compiles, tune searches, and thawed-entry revivals.
func (s *Server) withWorker(ctx context.Context, fn func(ctx context.Context) error) error {
	if n := s.pending.Add(1); n > int64(s.cfg.Workers+s.cfg.QueueDepth) {
		s.pending.Add(-1)
		return ErrBusy
	}
	defer s.pending.Add(-1)
	select {
	case s.tokens <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-s.tokens }()
	return fn(ctx)
}

// compile resolves a request through the cache: hit, coalesce onto an
// identical in-flight compile, thaw from the durable tier (local store,
// then the fingerprint's owning fleet peer), or occupy a worker slot
// and compile.
func (s *Server) compile(ctx context.Context, source string, params map[string]int, opt dhpf.Options) (key string, ent *program, cached bool, err error) {
	key = dhpf.Fingerprint(source, params, opt)
	ent, cached, err = s.cache.GetOrCompute(ctx, key, func(fctx context.Context) (*program, int64, error) {
		var e *program
		var size int64
		err := s.withWorker(fctx, func(wctx context.Context) error {
			if testPreCompile != nil {
				testPreCompile(wctx)
			}
			s.compiles.Add(1)
			// Compile through the artifact store: a warm edit (program-cache
			// miss, most procedures unchanged) thaws the clean procedures'
			// analyses and re-runs only the dirty ones.  Output is
			// byte-identical to a cold compile.
			p, _, err := s.inc.CompileCtx(wctx, source, params, opt)
			if err != nil {
				return err
			}
			e = newProgram(p)
			// Charge roughly what the entry pins in memory: the source and
			// the rendered report (the IR and analyses scale with both).
			size = int64(len(source) + len(e.report) + 1024)
			return nil
		})
		return e, size, err
	})
	return key, ent, cached, err
}

// liveProgram revives a thawed cache entry: endpoints that need the
// compiled program itself (/v1/run, a first /v1/verify) recompile it
// through the artifact store — warm, so with zero dirty procedures —
// inside a worker slot, and memoize it on the entry.  The output is
// byte-identical to the persisted rendering by the incremental
// compiler's contract.
func (s *Server) liveProgram(ctx context.Context, ent *program, source string, params map[string]int, opt dhpf.Options) (*dhpf.Program, error) {
	if p := ent.live(); p != nil {
		return p, nil
	}
	var p *dhpf.Program
	err := s.withWorker(ctx, func(wctx context.Context) error {
		s.compiles.Add(1)
		var err error
		p, _, err = s.inc.CompileCtx(wctx, source, params, opt)
		return err
	})
	if err != nil {
		return nil, err
	}
	ent.mu.Lock()
	if ent.prog == nil {
		ent.prog = p
	}
	p = ent.prog
	ent.mu.Unlock()
	return p, nil
}

// requestCtx applies the per-request compile deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// passStats renders an entry's pass records for the wire.  A program-
// cache hit did no pass work — the records describe the compile that
// populated the entry, not this request — so a hit reports each pass as
// cached with zero wall time instead of replaying stale timings.  A
// thawed entry (no live program) is by construction a hit and carries
// its records in cache-hit form already.
func passStats(ent *program, cached bool) []dhpf.PassStatJSON {
	prog := ent.live()
	if prog == nil {
		ent.mu.Lock()
		stats := ent.stats
		ent.mu.Unlock()
		return dhpf.CachedPassStatsJSON(stats)
	}
	if cached {
		return dhpf.CachedPassStatsJSON(prog.PassStats())
	}
	return dhpf.PassStatsJSON(prog.PassStats())
}

// compileOne resolves one compile request end-to-end (cache, node
// program rendering) and builds its wire response.  Shared by the single
// and batch compile handlers.
func (s *Server) compileOne(ctx context.Context, req dhpf.CompileRequest) (*dhpf.CompileResponse, error) {
	opt, err := req.Options.Resolve()
	if err != nil {
		return nil, err
	}
	key, ent, cached, err := s.compile(ctx, req.Source, req.Params, opt)
	if err != nil {
		return nil, err
	}
	nranks := ent.ranks
	ranks := req.Ranks
	if ranks == nil {
		for rk := 0; rk < nranks; rk++ {
			ranks = append(ranks, rk)
		}
	}
	progs := make(map[int]string, len(ranks))
	for _, rk := range ranks {
		if rk < 0 || rk >= nranks {
			return nil, fmt.Errorf("rank %d out of range (program has %d ranks)", rk, nranks)
		}
		progs[rk] = ent.nodeProgram(rk)
	}
	return &dhpf.CompileResponse{
		Fingerprint:  key,
		Ranks:        nranks,
		Report:       ent.report,
		NodePrograms: progs,
		PassStats:    passStats(ent, cached),
		Cached:       cached,
	}, nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req dhpf.CompileRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	resp, err := s.compileOne(ctx, req)
	if err != nil {
		s.failCompile(w, err)
		return
	}
	s.ok(w, *resp)
}

// handleCompileBatch compiles a slice of requests in order, sharing the
// program cache and the per-procedure artifact store across members: in
// a batch of near-identical programs (a parameter sweep, a set of edits
// to one code base) every member after the first thaws the procedures it
// shares with earlier members.  Per-member failures are reported in
// place, so one bad program does not fail its siblings.
func (s *Server) handleCompileBatch(w http.ResponseWriter, r *http.Request) {
	var req dhpf.BatchCompileRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		s.fail(w, http.StatusUnprocessableEntity, errors.New("batch has no requests"))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	results := make([]dhpf.BatchCompileResult, len(req.Requests))
	for i, cr := range req.Requests {
		resp, err := s.compileOne(ctx, cr)
		if err != nil {
			results[i].Error = err.Error()
			s.errCount.Add(1)
			if errors.Is(err, ErrBusy) {
				s.rejected.Add(1)
			}
			continue
		}
		results[i].Response = resp
	}
	s.ok(w, dhpf.BatchCompileResponse{Results: results})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req dhpf.CompileRequest
	if !s.decode(w, r, &req) {
		return
	}
	opt, err := req.Options.Resolve()
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	key, ent, cached, err := s.compile(ctx, req.Source, req.Params, opt)
	if err != nil {
		s.failCompile(w, err)
		return
	}
	var stats []dhpf.PassStat
	if cached {
		// A cache hit did no pass work: label every pass cached (and
		// render the table from the relabelled records) rather than
		// replaying the original compile's timings as if they were new.
		// cachedStatsOf also covers thawed entries, whose records are
		// persisted in exactly this form.
		stats = cachedStatsOf(ent)
	} else {
		stats = ent.live().PassStats()
	}
	s.ok(w, dhpf.ExplainResponse{
		Fingerprint: key,
		Table:       dhpf.StatsTable(stats),
		PassStats:   dhpf.PassStatsJSON(stats),
		Cached:      cached,
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req dhpf.RunRequest
	if !s.decode(w, r, &req) {
		return
	}
	opt, err := req.Options.Resolve()
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	key, ent, cached, err := s.compile(ctx, req.Source, req.Params, opt)
	if err != nil {
		s.failCompile(w, err)
		return
	}
	// Execution needs the live program; a thawed entry revives it here
	// (artifact-warm, zero dirty procedures).
	prog, err := s.liveProgram(ctx, ent, req.Source, req.Params, opt)
	if err != nil {
		s.failCompile(w, err)
		return
	}
	cfg, err := ParseMachine(req.Machine, ent.ranks)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	res, err := prog.RunEngine(cfg, req.Engine)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := dhpf.RunResponse{
		Fingerprint: key,
		Ranks:       ent.ranks,
		Seconds:     res.Seconds(),
		Messages:    res.Messages(),
		Bytes:       res.Bytes(),
		RankSeconds: res.RankSeconds(),
		Cached:      cached,
	}
	if b, err := passes.ParseBackend(opt.Backend); err == nil && b != passes.BackendMP {
		resp.Backend = b
		resp.Pulls = res.Pulls()
		resp.PulledBytes = res.PulledBytes()
	}
	if len(req.Arrays) > 0 {
		resp.Arrays = make(map[string]dhpf.ArrayJSON, len(req.Arrays))
		for _, name := range req.Arrays {
			data, lo, hi, err := res.Array(name)
			if err != nil {
				s.fail(w, http.StatusUnprocessableEntity, err)
				return
			}
			resp.Arrays[name] = dhpf.ArrayJSON{Data: data, Lo: lo, Hi: hi}
		}
	}
	s.ok(w, resp)
}

// handleVerify compiles (through the cache) and returns the translation
// validator's report.  The in-pipeline verify pass is disabled for this
// compile — a default compile hard-fails on safety errors, but the lint
// surface exists to *return* the diagnostics, so an unsafe program must
// still reach the verifier.  The report is memoized on the cache entry.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req dhpf.VerifyRequest
	if !s.decode(w, r, &req) {
		return
	}
	opt, err := req.Options.Resolve()
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	opt.Disable = append(opt.Disable, dhpf.PassVerify)
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	key, ent, cached, err := s.compile(ctx, req.Source, req.Params, opt)
	if err != nil {
		s.failCompile(w, err)
		return
	}
	ent.mu.Lock()
	hasRep := ent.verifyRep != nil
	ent.mu.Unlock()
	if !hasRep {
		// No memoized report: the proof runs over the live analyses, so a
		// thawed entry (persisted before anyone verified it) revives first.
		if _, err := s.liveProgram(ctx, ent, req.Source, req.Params, opt); err != nil {
			s.failCompile(w, err)
			return
		}
	}
	rep, err := ent.verify()
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	if !hasRep && s.durable != nil {
		// Persist the freshly proven report next to the program entry:
		// unchanged chunks dedup, the manifest gains a verify ref, and
		// the report survives restarts with the rest of the entry.
		s.durable.Store(key, ent, 0)
	}
	s.ok(w, dhpf.VerifyResponse{Fingerprint: key, VerifyReport: *rep, Cached: cached})
}

// handleAnalyze compiles (through the cache) and returns the static
// analyzer's report: symbolic loop summaries, dataflow diagnostics and
// the cost oracle's predicted counters.  Unlike verify, the in-pipeline
// analyze pass stays enabled — it never fails a compile — so the request
// shares its fingerprint (and therefore its cache entry) with a plain
// /v1/compile of the same triple.  The report is memoized on the entry
// and persisted alongside it.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req dhpf.AnalyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	opt, err := req.Options.Resolve()
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	key, ent, cached, err := s.compile(ctx, req.Source, req.Params, opt)
	if err != nil {
		s.failCompile(w, err)
		return
	}
	ent.mu.Lock()
	hasRep := ent.analyzeRep != nil
	ent.mu.Unlock()
	if !hasRep {
		// No memoized report: the analysis runs over the live facts, so a
		// thawed entry (persisted before anyone analyzed it) revives first.
		if _, err := s.liveProgram(ctx, ent, req.Source, req.Params, opt); err != nil {
			s.failCompile(w, err)
			return
		}
	}
	rep, err := ent.analyze()
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	if !hasRep && s.durable != nil {
		// Persist the fresh report next to the program entry: unchanged
		// chunks dedup, the manifest gains an analyze ref, and the report
		// survives restarts with the rest of the entry.
		s.durable.Store(key, ent, 0)
	}
	s.ok(w, dhpf.AnalyzeResponse{Fingerprint: key, AnalyzeReport: *rep, Cached: cached})
}

// handleTune runs an auto-tuning search inside one worker slot: the
// same pending-count backpressure (429) and per-request deadline as a
// compile, with the tuner's internal parallelism capped at the pool
// size.  With a durable store, completed leaderboards are persisted by
// tune-request fingerprint, so a restarted server answers a repeat
// request from disk without re-running the search.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req dhpf.TuneRequest
	if !s.decode(w, r, &req) {
		return
	}
	// The Workers clamp happens before fingerprinting: Workers shapes
	// the full tier's waves (and therefore pruning), so the key must
	// name the options as they will actually run.
	if req.Workers <= 0 || req.Workers > s.cfg.Workers {
		req.Workers = s.cfg.Workers
	}
	key := tuneFingerprint(req.Source, req.TuneOptions)
	if s.durable != nil {
		if res, ok := s.durable.loadTune(key); ok {
			res.Trail = append(res.Trail, "leaderboard recalled from durable store")
			s.ok(w, res)
			return
		}
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	var res *dhpf.TuneResult
	err := s.withWorker(ctx, func(wctx context.Context) error {
		var err error
		res, err = s.tuner.Tune(wctx, req.Source, req.TuneOptions)
		return err
	})
	if err != nil {
		s.failCompile(w, err)
		return
	}
	if s.durable != nil {
		s.durable.saveTune(key, res)
	}
	s.ok(w, res)
}

// tuneFingerprint is the durable-store key of one tune request: a hash
// of the source plus the effective options.  The search is
// deterministic for a fixed spec (internal/tune's contract), so equal
// fingerprints have equal leaderboards and a recalled result is exactly
// what a re-run would produce.
func tuneFingerprint(source string, opt dhpf.TuneOptions) string {
	js, _ := json.Marshal(opt)
	sum := sha256.Sum256([]byte(cache.Key("tune-v1", source, string(js))))
	return "tune:" + hex.EncodeToString(sum[:])
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.ok(w, s.Stats())
}

// ParseMachine resolves a machine name: "" or "sp2" is the paper's SP2
// sized to the program, "sp2:N" requires the program to want N ranks.
func ParseMachine(name string, ranks int) (dhpf.MachineConfig, error) {
	base, count, hasCount := strings.Cut(name, ":")
	if base == "" {
		base = "sp2"
	}
	if base != "sp2" {
		return dhpf.MachineConfig{}, fmt.Errorf("unknown machine %q (known: sp2, sp2:N)", name)
	}
	if hasCount {
		n, err := strconv.Atoi(count)
		if err != nil || n <= 0 {
			return dhpf.MachineConfig{}, fmt.Errorf("bad machine rank count in %q", name)
		}
		if n != ranks {
			return dhpf.MachineConfig{}, fmt.Errorf("machine %q has %d ranks but the program wants %d", name, n, ranks)
		}
	}
	return dhpf.SP2Machine(ranks), nil
}

// --- response plumbing -------------------------------------------------------

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// failCompile maps a compile-path error to its status: queue pressure,
// deadline, client cancellation, or a compile diagnostic.
func (s *Server) failCompile(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBusy):
		s.rejected.Add(1)
		s.fail(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("compile timed out: %w", err))
	case errors.Is(err, context.Canceled):
		s.fail(w, http.StatusRequestTimeout, fmt.Errorf("request cancelled: %w", err))
	default:
		s.fail(w, http.StatusUnprocessableEntity, err)
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.errCount.Add(1)
	writeJSON(w, status, dhpf.APIError{Message: err.Error()})
}

func (s *Server) ok(w http.ResponseWriter, v any) { writeJSON(w, http.StatusOK, v) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
