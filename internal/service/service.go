// Package service is the dhpfd compile service: an HTTP/JSON server over
// the root dhpf API that turns the compiler into a served artifact.  It
// fronts every compilation with a content-addressed program cache
// (internal/cache) keyed by dhpf.Fingerprint, so identical requests —
// the dominant shape of configuration sweeps and ablation studies — hit
// a stored program or coalesce onto an identical in-flight compile, and
// bounds the work it accepts with a fixed worker pool plus a bounded
// queue (full queue ⇒ 429).  Per-request deadlines are enforced through
// context cancellation at pass boundaries (passes.RunCtx), so an
// abandoned compile stops between passes and never corrupts the cache.
//
// Endpoints (all JSON; wire types in the root package):
//
//	POST /v1/compile        report + per-rank node programs + pass stats
//	POST /v1/compile/batch  many compiles sharing one artifact store
//	POST /v1/explain        the cmd/dhpfc -explain table
//	POST /v1/run            execute on a named machine ("sp2" or "sp2:N")
//	POST /v1/verify         translation-validation report (the -lint surface)
//	POST /v1/tune           auto-tune distributions/granularity/ablations
//	GET  /v1/stats          cache + request counters
//	GET  /healthz           liveness
//
// Beneath the whole-program cache sits a per-procedure artifact store
// (dhpf.Incremental): a warm edit — same program, one procedure changed
// — misses the program cache but thaws the dependence graphs,
// communication plans and verification fragments of every unchanged
// procedure, re-analyzing only the edited ones.  /v1/stats reports the
// artifact tier's hit/miss/dirty counters alongside the program cache's.
//
// A tune request occupies one worker slot for its whole duration (its
// internal evaluation parallelism is capped at the pool size), so tuning
// shares the same 429 backpressure and deadline regime as compiles.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dhpf"
	"dhpf/internal/cache"
)

// ErrBusy is returned (as HTTP 429) when the compile queue is full.
var ErrBusy = errors.New("service: compile queue full")

// Config sizes the service.  Zero fields take the defaults.
type Config struct {
	// Workers bounds concurrent compiles (default 4).  Cache hits and
	// coalesced requests never occupy a worker.
	Workers int
	// QueueDepth bounds compiles waiting for a worker (default 64);
	// beyond Workers+QueueDepth new compiles are rejected with 429.
	QueueDepth int
	// CacheBytes is the program cache budget (default 256 MiB),
	// charged per entry as source + rendered-report size.
	CacheBytes int64
	// ArtifactBytes is the per-procedure artifact store budget backing
	// warm-edit recompiles (default 64 MiB).
	ArtifactBytes int64
	// RequestTimeout bounds each request's compile+render time
	// (default 60s).  Hitting it aborts the compile at the next pass
	// boundary and returns 504.
	RequestTimeout time.Duration
	// Logger receives one structured line per request (nil = silent).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.ArtifactBytes <= 0 {
		c.ArtifactBytes = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// testHooks lets tests deterministically hold a compile inside a worker
// slot (nil in production).
var testPreCompile func(ctx context.Context)

// program is one cache entry: the compiled program plus its rendered
// artifacts.  The report is rendered once at insert (rendering re-runs
// transfer planning per communication event, which would otherwise
// dominate warm-hit latency); node programs are rendered per rank on
// first request and memoized.
type program struct {
	prog   *dhpf.Program
	report string

	mu        sync.Mutex
	nodes     map[int]string
	verifyRep *dhpf.VerifyReport
}

func newProgram(p *dhpf.Program) *program {
	return &program{prog: p, report: p.Report(), nodes: map[int]string{}}
}

func (e *program) nodeProgram(rank int) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.nodes[rank]; ok {
		return s
	}
	s := e.prog.NodeProgram(rank)
	e.nodes[rank] = s
	return s
}

// verify memoizes the translation-validation report: the proof is pure
// over the compiled analyses, so repeated /v1/verify requests on one
// fingerprint pay the set algebra once.
func (e *program) verify() (*dhpf.VerifyReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.verifyRep != nil {
		return e.verifyRep, nil
	}
	rep, err := e.prog.Verify()
	if err != nil {
		return nil, err
	}
	e.verifyRep = &rep
	return e.verifyRep, nil
}

// Server is one compile service instance.
type Server struct {
	cfg   Config
	cache *cache.Cache[*program]
	// inc compiles through the per-procedure artifact store: program-cache
	// misses whose procedures are mostly unchanged (warm edits) reuse the
	// clean procedures' frozen analyses.
	inc *dhpf.Incremental
	// tuner serves /v1/tune; its memo caches live as long as the server,
	// so repeated tune requests reuse full evaluations.
	tuner *dhpf.Tuner
	// tokens is the worker pool: holding a token = compiling.
	tokens chan struct{}
	// pending counts compiles holding or waiting for a token; above
	// Workers+QueueDepth new compiles are rejected.
	pending atomic.Int64
	start   time.Time

	requests atomic.Int64
	active   atomic.Int64
	compiles atomic.Int64
	errCount atomic.Int64
	rejected atomic.Int64
	timeouts atomic.Int64
}

// New returns a server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:    cfg,
		cache:  cache.New[*program](cfg.CacheBytes),
		inc:    dhpf.NewIncremental(cfg.ArtifactBytes),
		tuner:  dhpf.NewTuner(),
		tokens: make(chan struct{}, cfg.Workers),
		start:  time.Now(),
	}
}

// Handler returns the service's HTTP handler (routing + request logs).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/compile/batch", s.handleCompileBatch)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/tune", s.handleTune)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s.logged(mux)
}

// logged wraps the mux with counters and one structured log line per
// request.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.active.Add(1)
		defer s.active.Add(-1)
		lw := &loggingWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(lw, r)
		s.cfg.Logger.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", lw.status, "bytes", lw.bytes,
			"dur", time.Since(t0).Round(time.Microsecond).String())
	})
}

type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *loggingWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *loggingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Stats snapshots the cache and request counters.
func (s *Server) Stats() dhpf.StatsResponse {
	cs := s.cache.Stats()
	as := s.inc.ArtifactStats()
	return dhpf.StatsResponse{
		Artifacts: dhpf.ArtifactCacheStats{
			Hits:      as.Hits,
			Misses:    as.Misses,
			Dirty:     as.Dirty,
			Evictions: as.Evictions,
			Entries:   as.Entries,
			SizeBytes: as.SizeBytes,
			MaxBytes:  as.MaxBytes,
		},
		Cache: dhpf.CacheStats{
			Hits:              cs.Hits,
			Misses:            cs.Misses,
			InflightCoalesced: cs.InflightCoalesced,
			Evictions:         cs.Evictions,
			Entries:           cs.Entries,
			SizeBytes:         cs.SizeBytes,
			MaxBytes:          cs.MaxBytes,
		},
		Server: dhpf.ServerStats{
			Requests:   s.requests.Load(),
			Active:     s.active.Load(),
			Compiles:   s.compiles.Load(),
			Errors:     s.errCount.Load(),
			Rejected:   s.rejected.Load(),
			Timeouts:   s.timeouts.Load(),
			Workers:    s.cfg.Workers,
			QueueDepth: s.cfg.QueueDepth,
			UptimeMS:   time.Since(s.start).Milliseconds(),
		},
	}
}

// compile resolves a request through the cache: hit, coalesce onto an
// identical in-flight compile, or occupy a worker slot and compile.
func (s *Server) compile(ctx context.Context, source string, params map[string]int, opt dhpf.Options) (key string, ent *program, cached bool, err error) {
	key = dhpf.Fingerprint(source, params, opt)
	ent, cached, err = s.cache.GetOrCompute(ctx, key, func(fctx context.Context) (*program, int64, error) {
		if n := s.pending.Add(1); n > int64(s.cfg.Workers+s.cfg.QueueDepth) {
			s.pending.Add(-1)
			return nil, 0, ErrBusy
		}
		defer s.pending.Add(-1)
		select {
		case s.tokens <- struct{}{}:
		case <-fctx.Done():
			return nil, 0, fctx.Err()
		}
		defer func() { <-s.tokens }()
		if testPreCompile != nil {
			testPreCompile(fctx)
		}
		s.compiles.Add(1)
		// Compile through the artifact store: a warm edit (program-cache
		// miss, most procedures unchanged) thaws the clean procedures'
		// analyses and re-runs only the dirty ones.  Output is
		// byte-identical to a cold compile.
		p, _, err := s.inc.CompileCtx(fctx, source, params, opt)
		if err != nil {
			return nil, 0, err
		}
		e := newProgram(p)
		// Charge roughly what the entry pins in memory: the source and
		// the rendered report (the IR and analyses scale with both).
		return e, int64(len(source) + len(e.report) + 1024), nil
	})
	return key, ent, cached, err
}

// requestCtx applies the per-request compile deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// passStats renders an entry's pass records for the wire.  A program-
// cache hit did no pass work — the records describe the compile that
// populated the entry, not this request — so a hit reports each pass as
// cached with zero wall time instead of replaying stale timings.
func passStats(ent *program, cached bool) []dhpf.PassStatJSON {
	if cached {
		return dhpf.CachedPassStatsJSON(ent.prog.PassStats())
	}
	return dhpf.PassStatsJSON(ent.prog.PassStats())
}

// compileOne resolves one compile request end-to-end (cache, node
// program rendering) and builds its wire response.  Shared by the single
// and batch compile handlers.
func (s *Server) compileOne(ctx context.Context, req dhpf.CompileRequest) (*dhpf.CompileResponse, error) {
	opt, err := req.Options.Resolve()
	if err != nil {
		return nil, err
	}
	key, ent, cached, err := s.compile(ctx, req.Source, req.Params, opt)
	if err != nil {
		return nil, err
	}
	nranks := ent.prog.Ranks()
	ranks := req.Ranks
	if ranks == nil {
		for rk := 0; rk < nranks; rk++ {
			ranks = append(ranks, rk)
		}
	}
	progs := make(map[int]string, len(ranks))
	for _, rk := range ranks {
		if rk < 0 || rk >= nranks {
			return nil, fmt.Errorf("rank %d out of range (program has %d ranks)", rk, nranks)
		}
		progs[rk] = ent.nodeProgram(rk)
	}
	return &dhpf.CompileResponse{
		Fingerprint:  key,
		Ranks:        nranks,
		Report:       ent.report,
		NodePrograms: progs,
		PassStats:    passStats(ent, cached),
		Cached:       cached,
	}, nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req dhpf.CompileRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	resp, err := s.compileOne(ctx, req)
	if err != nil {
		s.failCompile(w, err)
		return
	}
	s.ok(w, *resp)
}

// handleCompileBatch compiles a slice of requests in order, sharing the
// program cache and the per-procedure artifact store across members: in
// a batch of near-identical programs (a parameter sweep, a set of edits
// to one code base) every member after the first thaws the procedures it
// shares with earlier members.  Per-member failures are reported in
// place, so one bad program does not fail its siblings.
func (s *Server) handleCompileBatch(w http.ResponseWriter, r *http.Request) {
	var req dhpf.BatchCompileRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		s.fail(w, http.StatusUnprocessableEntity, errors.New("batch has no requests"))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	results := make([]dhpf.BatchCompileResult, len(req.Requests))
	for i, cr := range req.Requests {
		resp, err := s.compileOne(ctx, cr)
		if err != nil {
			results[i].Error = err.Error()
			s.errCount.Add(1)
			if errors.Is(err, ErrBusy) {
				s.rejected.Add(1)
			}
			continue
		}
		results[i].Response = resp
	}
	s.ok(w, dhpf.BatchCompileResponse{Results: results})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req dhpf.CompileRequest
	if !s.decode(w, r, &req) {
		return
	}
	opt, err := req.Options.Resolve()
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	key, ent, cached, err := s.compile(ctx, req.Source, req.Params, opt)
	if err != nil {
		s.failCompile(w, err)
		return
	}
	stats := ent.prog.PassStats()
	if cached {
		// A cache hit did no pass work: label every pass cached (and
		// render the table from the relabelled records) rather than
		// replaying the original compile's timings as if they were new.
		cachedStats := make([]dhpf.PassStat, len(stats))
		for i, st := range stats {
			cachedStats[i] = st
			cachedStats[i].Cached = true
			cachedStats[i].Wall = 0
		}
		stats = cachedStats
	}
	s.ok(w, dhpf.ExplainResponse{
		Fingerprint: key,
		Table:       dhpf.StatsTable(stats),
		PassStats:   dhpf.PassStatsJSON(stats),
		Cached:      cached,
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req dhpf.RunRequest
	if !s.decode(w, r, &req) {
		return
	}
	opt, err := req.Options.Resolve()
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	key, ent, cached, err := s.compile(ctx, req.Source, req.Params, opt)
	if err != nil {
		s.failCompile(w, err)
		return
	}
	cfg, err := ParseMachine(req.Machine, ent.prog.Ranks())
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	res, err := ent.prog.RunEngine(cfg, req.Engine)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := dhpf.RunResponse{
		Fingerprint: key,
		Ranks:       ent.prog.Ranks(),
		Seconds:     res.Seconds(),
		Messages:    res.Messages(),
		Bytes:       res.Bytes(),
		RankSeconds: res.RankSeconds(),
		Cached:      cached,
	}
	if len(req.Arrays) > 0 {
		resp.Arrays = make(map[string]dhpf.ArrayJSON, len(req.Arrays))
		for _, name := range req.Arrays {
			data, lo, hi, err := res.Array(name)
			if err != nil {
				s.fail(w, http.StatusUnprocessableEntity, err)
				return
			}
			resp.Arrays[name] = dhpf.ArrayJSON{Data: data, Lo: lo, Hi: hi}
		}
	}
	s.ok(w, resp)
}

// handleVerify compiles (through the cache) and returns the translation
// validator's report.  The in-pipeline verify pass is disabled for this
// compile — a default compile hard-fails on safety errors, but the lint
// surface exists to *return* the diagnostics, so an unsafe program must
// still reach the verifier.  The report is memoized on the cache entry.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req dhpf.VerifyRequest
	if !s.decode(w, r, &req) {
		return
	}
	opt, err := req.Options.Resolve()
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	opt.Disable = append(opt.Disable, dhpf.PassVerify)
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	key, ent, cached, err := s.compile(ctx, req.Source, req.Params, opt)
	if err != nil {
		s.failCompile(w, err)
		return
	}
	rep, err := ent.verify()
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.ok(w, dhpf.VerifyResponse{Fingerprint: key, VerifyReport: *rep, Cached: cached})
}

// handleTune runs an auto-tuning search inside one worker slot: the
// same pending-count backpressure (429) and per-request deadline as a
// compile, with the tuner's internal parallelism capped at the pool
// size.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req dhpf.TuneRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if n := s.pending.Add(1); n > int64(s.cfg.Workers+s.cfg.QueueDepth) {
		s.pending.Add(-1)
		s.rejected.Add(1)
		s.fail(w, http.StatusTooManyRequests, ErrBusy)
		return
	}
	defer s.pending.Add(-1)
	select {
	case s.tokens <- struct{}{}:
	case <-ctx.Done():
		s.failCompile(w, ctx.Err())
		return
	}
	defer func() { <-s.tokens }()
	if req.Workers <= 0 || req.Workers > s.cfg.Workers {
		req.Workers = s.cfg.Workers
	}
	res, err := s.tuner.Tune(ctx, req.Source, req.TuneOptions)
	if err != nil {
		s.failCompile(w, err)
		return
	}
	s.ok(w, res)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.ok(w, s.Stats())
}

// ParseMachine resolves a machine name: "" or "sp2" is the paper's SP2
// sized to the program, "sp2:N" requires the program to want N ranks.
func ParseMachine(name string, ranks int) (dhpf.MachineConfig, error) {
	base, count, hasCount := strings.Cut(name, ":")
	if base == "" {
		base = "sp2"
	}
	if base != "sp2" {
		return dhpf.MachineConfig{}, fmt.Errorf("unknown machine %q (known: sp2, sp2:N)", name)
	}
	if hasCount {
		n, err := strconv.Atoi(count)
		if err != nil || n <= 0 {
			return dhpf.MachineConfig{}, fmt.Errorf("bad machine rank count in %q", name)
		}
		if n != ranks {
			return dhpf.MachineConfig{}, fmt.Errorf("machine %q has %d ranks but the program wants %d", name, n, ranks)
		}
	}
	return dhpf.SP2Machine(ranks), nil
}

// --- response plumbing -------------------------------------------------------

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// failCompile maps a compile-path error to its status: queue pressure,
// deadline, client cancellation, or a compile diagnostic.
func (s *Server) failCompile(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBusy):
		s.rejected.Add(1)
		s.fail(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("compile timed out: %w", err))
	case errors.Is(err, context.Canceled):
		s.fail(w, http.StatusRequestTimeout, fmt.Errorf("request cancelled: %w", err))
	default:
		s.fail(w, http.StatusUnprocessableEntity, err)
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.errCount.Add(1)
	writeJSON(w, status, dhpf.APIError{Message: err.Error()})
}

func (s *Server) ok(w http.ResponseWriter, v any) { writeJSON(w, http.StatusOK, v) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
