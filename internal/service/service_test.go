package service

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dhpf"
	"dhpf/internal/nas"
)

const tinySrc = `
program tiny
param N = 16
param P = 4
!hpf$ processors procs(P)
!hpf$ template t(N)
!hpf$ align a with t(d0)
!hpf$ distribute t(BLOCK) onto procs

subroutine main()
  real a(0:N-1)
  !hpf$ independent
  do i = 0, N-1
    a(i) = 2.0*i
  enddo
end
`

func newTestServer(t *testing.T, cfg Config) (*Server, *dhpf.Client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, dhpf.NewClient(ts.URL)
}

// TestWarmHitByteIdentical: a warm /v1/compile hit returns byte-identical
// report and node programs to the cold compile, which in turn match a
// direct library compile of the same inputs.
func TestWarmHitByteIdentical(t *testing.T) {
	_, client := newTestServer(t, Config{})
	src := nas.SPSource(12, 1, 2, 2)
	req := dhpf.CompileRequest{Source: src}

	cold, err := client.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Error("first compile reported cached")
	}
	warm, err := client.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("second compile not served from cache")
	}
	if cold.Fingerprint != warm.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", cold.Fingerprint, warm.Fingerprint)
	}
	if warm.Report != cold.Report {
		t.Error("warm report differs from cold report")
	}
	if len(warm.NodePrograms) != cold.Ranks || len(cold.NodePrograms) != cold.Ranks {
		t.Fatalf("node program counts: warm %d cold %d want %d",
			len(warm.NodePrograms), len(cold.NodePrograms), cold.Ranks)
	}
	for rk := range cold.NodePrograms {
		if warm.NodePrograms[rk] != cold.NodePrograms[rk] {
			t.Errorf("rank %d node program differs warm vs cold", rk)
		}
	}

	prog, err := dhpf.Compile(src, nil, dhpf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Report != prog.Report() {
		t.Error("service report differs from library compile")
	}
	if cold.NodePrograms[0] != prog.NodeProgram(0) {
		t.Error("service node program differs from library compile")
	}
	if got := dhpf.Fingerprint(src, nil, dhpf.DefaultOptions()); got != cold.Fingerprint {
		t.Errorf("service key %s != library key %s", cold.Fingerprint, got)
	}
}

// TestConcurrent32Singleflight: 32 concurrent identical requests against
// a 4-worker pool compile exactly once; the rest hit the cache or
// coalesce onto the in-flight compile (visible in /v1/stats).
func TestConcurrent32Singleflight(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	req := dhpf.CompileRequest{Source: nas.SPSource(12, 1, 2, 2), Ranks: []int{0}}

	const n = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, n)
	reports := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := client.Compile(context.Background(), req)
			errs[i] = err
			if err == nil {
				reports[i] = resp.Report
			}
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if reports[i] != reports[0] {
			t.Errorf("request %d got a different report", i)
		}
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Misses != 1 {
		t.Errorf("identical requests compiled %d times, want 1 (singleflight)", stats.Cache.Misses)
	}
	if got := stats.Cache.Hits + stats.Cache.InflightCoalesced; got != n-1 {
		t.Errorf("hits+coalesced = %d, want %d", got, n-1)
	}
	if stats.Server.Compiles != 1 {
		t.Errorf("server ran %d compiles, want 1", stats.Server.Compiles)
	}
}

// TestConcurrentDistinct: 32 concurrent *distinct* compiles drain through
// the 4-worker pool without loss (run under -race in CI).
func TestConcurrentDistinct(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := dhpf.CompileRequest{
				Source: tinySrc,
				Params: map[string]int{"SEED": i}, // unique cache key per request
				Ranks:  []int{0},
			}
			_, errs[i] = client.Compile(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
}

// TestQueueFull429: with one worker and a queue of one, a third distinct
// compile is rejected with 429 while the first two are in flight.
func TestQueueFull429(t *testing.T) {
	release := make(chan struct{})
	testPreCompile = func(context.Context) { <-release }
	defer func() { testPreCompile = nil }()

	srv, client := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	reqN := func(i int) dhpf.CompileRequest {
		return dhpf.CompileRequest{Source: tinySrc, Params: map[string]int{"SEED": i}, Ranks: []int{0}}
	}
	var wg sync.WaitGroup
	firstTwo := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, firstTwo[i] = client.Compile(context.Background(), reqN(i))
		}(i)
	}
	// Wait until one compile occupies the worker and one waits in queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.pending.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never filled: pending=%d", srv.pending.Load())
		}
		time.Sleep(time.Millisecond)
	}
	_, err := client.Compile(context.Background(), reqN(2))
	var apiErr *dhpf.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third compile: want 429, got %v", err)
	}
	close(release)
	wg.Wait()
	for i, err := range firstTwo {
		if err != nil {
			t.Errorf("queued compile %d failed: %v", i, err)
		}
	}
	if got := srv.Stats().Server.Rejected; got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
}

// TestCancelAbortsWithoutCorruption: a client that gives up cancels the
// in-flight compile between passes; the same key then compiles cleanly.
func TestCancelAbortsWithoutCorruption(t *testing.T) {
	entered := make(chan struct{}, 1)
	testPreCompile = func(ctx context.Context) {
		entered <- struct{}{}
		<-ctx.Done() // hold the worker until the last waiter gives up
	}
	defer func() { testPreCompile = nil }()

	srv, client := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	req := dhpf.CompileRequest{Source: tinySrc, Ranks: []int{0}}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.Compile(ctx, req)
		done <- err
	}()
	<-entered
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled request reported success")
	}

	// The aborted flight must not have cached anything or leaked the
	// worker: the same request now compiles successfully.  (Retry
	// briefly — the dying flight may still be unwinding, and a request
	// that coalesces onto it inherits its cancellation error.)
	testPreCompile = nil
	var resp *dhpf.CompileResponse
	var err error
	for deadline := time.Now().Add(5 * time.Second); ; time.Sleep(time.Millisecond) {
		resp, err = client.Compile(context.Background(), req)
		if err == nil || time.Now().After(deadline) {
			break
		}
	}
	if err != nil {
		t.Fatalf("recompile after abort: %v", err)
	}
	if resp.Cached {
		t.Error("aborted compile left a cache entry")
	}
	if got := srv.cache.Stats().Entries; got != 1 {
		t.Errorf("cache entries = %d, want 1", got)
	}
}

// TestCancelWhileQueued: cancelling a request that is still waiting for
// a worker returns its context error promptly and releases the queue
// slot without the request ever occupying a worker or compiling.
func TestCancelWhileQueued(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	testPreCompile = func(context.Context) { entered <- struct{}{}; <-release }
	defer func() { testPreCompile = nil }()

	srv, client := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	hold := dhpf.CompileRequest{Source: tinySrc, Ranks: []int{0}}
	queued := dhpf.CompileRequest{Source: tinySrc, Params: map[string]int{"SEED": 1}, Ranks: []int{0}}

	holdDone := make(chan error, 1)
	go func() {
		_, err := client.Compile(context.Background(), hold)
		holdDone <- err
	}()
	// Only after the hold request is confirmed inside the worker slot is
	// the second request sent: with a distinct fingerprint it cannot
	// coalesce, so it must wait in the queue behind the held worker.
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queuedDone := make(chan error, 1)
	go func() {
		_, err := client.Compile(ctx, queued)
		queuedDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.pending.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: pending=%d", srv.pending.Load())
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case err := <-queuedDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued request: want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled queued request did not return promptly")
	}
	// The queue slot frees while the worker is still held.
	for deadline = time.Now().Add(5 * time.Second); srv.pending.Load() != 1; time.Sleep(time.Millisecond) {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled request still pending: pending=%d", srv.pending.Load())
		}
	}

	close(release)
	if err := <-holdDone; err != nil {
		t.Fatalf("held compile failed: %v", err)
	}
	if got := srv.Stats().Server.Compiles; got != 1 {
		t.Errorf("compiles = %d, want 1 (cancelled request must never reach a worker)", got)
	}
}

// TestTimeout504: a server-side deadline shorter than any compile yields
// 504 and counts as a timeout.
func TestTimeout504(t *testing.T) {
	srv, client := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	_, err := client.Compile(context.Background(), dhpf.CompileRequest{Source: tinySrc})
	var apiErr *dhpf.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %v", err)
	}
	if got := srv.Stats().Server.Timeouts; got != 1 {
		t.Errorf("timeout counter = %d, want 1", got)
	}
}

// TestExplainAndRun: /v1/explain returns the -explain table, /v1/run the
// virtual-time counters and requested arrays, both through the cache.
func TestExplainAndRun(t *testing.T) {
	_, client := newTestServer(t, Config{})
	expl, err := client.Explain(context.Background(), dhpf.CompileRequest{
		Source:  tinySrc,
		Options: &dhpf.RequestOptions{Instrument: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expl.Table, "parse") || !strings.Contains(expl.Table, "Δbytes") {
		t.Errorf("explain table malformed:\n%s", expl.Table)
	}
	if len(expl.PassStats) == 0 {
		t.Error("explain returned no pass stats")
	}

	run, err := client.Run(context.Background(), dhpf.RunRequest{
		Source: tinySrc, Machine: "sp2:4", Arrays: []string{"a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Ranks != 4 || run.Seconds <= 0 || len(run.RankSeconds) != 4 {
		t.Errorf("run counters: ranks=%d s=%g rank_seconds=%d", run.Ranks, run.Seconds, len(run.RankSeconds))
	}
	a := run.Arrays["a"]
	if len(a.Data) != 16 {
		t.Fatalf("array a has %d elements", len(a.Data))
	}
	for i, v := range a.Data {
		if v != 2.0*float64(i) {
			t.Fatalf("a[%d] = %g, want %g", i, v, 2.0*float64(i))
		}
	}

	// The run endpoint shares the compile cache.
	run2, err := client.Run(context.Background(), dhpf.RunRequest{Source: tinySrc, Machine: "sp2"})
	if err != nil {
		t.Fatal(err)
	}
	if !run2.Cached {
		t.Error("second run did not reuse the cached program")
	}
}

// TestRunEngineField: /v1/run's engine selector.  Both engines return
// identical run responses — same fingerprint (engine choice is not a
// compile concern), bit-identical virtual clocks, traffic, and gathered
// arrays — and an unknown engine is a 422.
func TestRunEngineField(t *testing.T) {
	_, client := newTestServer(t, Config{})
	src := nas.SPSource(12, 1, 2, 2)
	base := dhpf.RunRequest{Source: src, Machine: "sp2:4", Arrays: []string{"u"}}

	reqC := base
	reqC.Engine = "compiled"
	runC, err := client.Run(context.Background(), reqC)
	if err != nil {
		t.Fatal(err)
	}
	reqI := base
	reqI.Engine = "interp"
	runI, err := client.Run(context.Background(), reqI)
	if err != nil {
		t.Fatal(err)
	}
	if runC.Fingerprint != runI.Fingerprint {
		t.Errorf("fingerprints differ across engines: %s vs %s", runC.Fingerprint, runI.Fingerprint)
	}
	if math.Float64bits(runC.Seconds) != math.Float64bits(runI.Seconds) {
		t.Errorf("virtual time differs: compiled %v, interp %v", runC.Seconds, runI.Seconds)
	}
	if runC.Messages != runI.Messages || runC.Bytes != runI.Bytes {
		t.Errorf("traffic differs: compiled %d/%d, interp %d/%d",
			runC.Messages, runC.Bytes, runI.Messages, runI.Bytes)
	}
	for r := range runC.RankSeconds {
		if math.Float64bits(runC.RankSeconds[r]) != math.Float64bits(runI.RankSeconds[r]) {
			t.Errorf("rank %d clock differs", r)
		}
	}
	uc, ui := runC.Arrays["u"], runI.Arrays["u"]
	if len(uc.Data) == 0 || len(uc.Data) != len(ui.Data) {
		t.Fatalf("array sizes: compiled %d, interp %d", len(uc.Data), len(ui.Data))
	}
	for k := range uc.Data {
		if math.Float64bits(uc.Data[k]) != math.Float64bits(ui.Data[k]) {
			t.Fatalf("u[%d]: compiled %v, interp %v", k, uc.Data[k], ui.Data[k])
		}
	}

	bad := base
	bad.Engine = "bogus"
	_, err = client.Run(context.Background(), bad)
	var apiErr *dhpf.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad engine error = %v, want 422", err)
	}
}

// TestBadRequests: malformed inputs map to the right statuses.
func TestBadRequests(t *testing.T) {
	_, client := newTestServer(t, Config{})
	cases := []struct {
		name   string
		call   func() error
		status int
	}{
		{"compile error", func() error {
			_, err := client.Compile(context.Background(), dhpf.CompileRequest{Source: "not hpf"})
			return err
		}, http.StatusUnprocessableEntity},
		{"bad newprop", func() error {
			_, err := client.Compile(context.Background(), dhpf.CompileRequest{
				Source: tinySrc, Options: &dhpf.RequestOptions{NewProp: "wat"}})
			return err
		}, http.StatusUnprocessableEntity},
		{"bad disable", func() error {
			_, err := client.Compile(context.Background(), dhpf.CompileRequest{
				Source: tinySrc, Options: &dhpf.RequestOptions{Disable: []string{"nosuchpass"}}})
			return err
		}, http.StatusUnprocessableEntity},
		{"bad rank", func() error {
			_, err := client.Compile(context.Background(), dhpf.CompileRequest{Source: tinySrc, Ranks: []int{99}})
			return err
		}, http.StatusUnprocessableEntity},
		{"bad machine", func() error {
			_, err := client.Run(context.Background(), dhpf.RunRequest{Source: tinySrc, Machine: "cray:4"})
			return err
		}, http.StatusUnprocessableEntity},
		{"machine rank mismatch", func() error {
			_, err := client.Run(context.Background(), dhpf.RunRequest{Source: tinySrc, Machine: "sp2:25"})
			return err
		}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		err := tc.call()
		var apiErr *dhpf.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != tc.status {
			t.Errorf("%s: want HTTP %d, got %v", tc.name, tc.status, err)
		}
	}
}

// TestParseMachine covers the machine-name grammar.
func TestParseMachine(t *testing.T) {
	for _, name := range []string{"", "sp2", "sp2:9"} {
		cfg, err := ParseMachine(name, 9)
		if err != nil {
			t.Errorf("ParseMachine(%q): %v", name, err)
		} else if cfg.Procs != 9 {
			t.Errorf("ParseMachine(%q).Procs = %d", name, cfg.Procs)
		}
	}
	for _, name := range []string{"sp2:8", "sp2:x", "sp2:-1", "cray"} {
		if _, err := ParseMachine(name, 9); err == nil {
			t.Errorf("ParseMachine(%q) should fail", name)
		}
	}
}

// TestVerifyEndpoint: /v1/verify returns the translation validator's
// verdict through the program cache, memoizing the report on the entry.
// Its compile is keyed apart from a default compile (the in-pipeline
// verify pass is disabled so unsafe programs still yield diagnostics).
func TestVerifyEndpoint(t *testing.T) {
	_, client := newTestServer(t, Config{})
	req := dhpf.VerifyRequest{Source: tinySrc}

	cold, err := client.Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Clean || cold.Errors != 0 {
		t.Fatalf("tiny program not clean:\n%s", cold.Text)
	}
	if cold.Stmts == 0 || cold.Ranks != 4 {
		t.Errorf("report missing coverage counters: %+v", cold.VerifyReport)
	}
	if !strings.Contains(cold.Summary, "verify: clean") {
		t.Errorf("summary = %q", cold.Summary)
	}
	if cold.Cached {
		t.Error("first verify reported cached")
	}

	warm, err := client.Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("second verify not served from cache")
	}
	if warm.Text != cold.Text || warm.Fingerprint != cold.Fingerprint {
		t.Error("warm verify differs from cold")
	}

	comp, err := client.Compile(context.Background(), dhpf.CompileRequest{Source: tinySrc})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Fingerprint == cold.Fingerprint {
		t.Error("verify compile shares the default compile's cache key")
	}
}

// TestAnalyzeEndpoint: /v1/analyze returns the static-analysis report
// with the cost oracle's prediction, memoizes it on the cache entry,
// and — unlike verify, whose compile must disable the in-pipeline pass —
// shares its fingerprint with a plain compile of the same triple.
func TestAnalyzeEndpoint(t *testing.T) {
	_, client := newTestServer(t, Config{})
	req := dhpf.AnalyzeRequest{Source: tinySrc}

	cold, err := client.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Clean || cold.Errors != 0 {
		t.Fatalf("tiny program not clean:\n%s", cold.Text)
	}
	if cold.Procs != 1 || cold.Phases == 0 {
		t.Errorf("report missing summaries: procs=%d phases=%d", cold.Procs, cold.Phases)
	}
	if cold.Cost == nil || !cold.Cost.Exact || cold.Cost.TotalFlops() == 0 {
		t.Errorf("report missing exact cost prediction: %+v", cold.Cost)
	}
	if !strings.Contains(cold.Summary, "analyze:") {
		t.Errorf("summary = %q", cold.Summary)
	}
	if cold.Cached {
		t.Error("first analyze reported cached")
	}

	warm, err := client.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("second analyze not served from cache")
	}
	if warm.Text != cold.Text || warm.Fingerprint != cold.Fingerprint {
		t.Error("warm analyze differs from cold")
	}

	comp, err := client.Compile(context.Background(), dhpf.CompileRequest{Source: tinySrc})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Fingerprint != cold.Fingerprint {
		t.Error("analyze compile does not share the default compile's cache key")
	}
	if !comp.Cached {
		t.Error("compile after analyze missed the shared cache entry")
	}
}

// editSPMod makes the canonical warm edit to an SPModSource program: a
// one-constant change inside the add procedure.
func editSPMod(t *testing.T, src string) string {
	t.Helper()
	edited := strings.Replace(src, " + 0.1*(rhs(1", " + 0.105*(rhs(1", 1)
	if edited == src {
		t.Fatal("warm-edit marker not found in SPModSource output")
	}
	return edited
}

// TestBatchCompileWarmEdit: a batch whose second member is a one-procedure
// edit of the first shares the unchanged procedures' artifacts, a broken
// member fails in place without failing its siblings, and every produced
// report is byte-identical to a direct library compile.
func TestBatchCompileWarmEdit(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	base := nas.SPModSource(12, 1, 2, 2)
	edited := editSPMod(t, base)

	resp, err := client.CompileBatch(context.Background(), dhpf.BatchCompileRequest{
		Requests: []dhpf.CompileRequest{
			{Source: base, Ranks: []int{0}},
			{Source: edited, Ranks: []int{0}},
			{Source: "program broken\nsubroutine main()\n  this is not hpf\nend\n"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].Response == nil {
		t.Fatalf("base member failed: %s", resp.Results[0].Error)
	}
	if resp.Results[1].Error != "" || resp.Results[1].Response == nil {
		t.Fatalf("edited member failed: %s", resp.Results[1].Error)
	}
	if resp.Results[2].Error == "" || resp.Results[2].Response != nil {
		t.Error("broken member did not report its error in place")
	}
	if resp.Results[0].Response.Fingerprint == resp.Results[1].Response.Fingerprint {
		t.Error("distinct sources share a fingerprint")
	}

	// Byte-identical to direct library compiles of the same sources.
	for i, src := range []string{base, edited} {
		prog, err := dhpf.Compile(src, nil, dhpf.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if resp.Results[i].Response.Report != prog.Report() {
			t.Errorf("member %d report differs from library compile", i)
		}
		if resp.Results[i].Response.NodePrograms[0] != prog.NodeProgram(0) {
			t.Errorf("member %d node program differs from library compile", i)
		}
	}

	// The edited member reused the unchanged procedures' artifacts.
	as := srv.Stats().Artifacts
	if as.Hits == 0 {
		t.Error("warm-edit batch member thawed no artifacts")
	}
	if as.Dirty == 0 {
		t.Error("warm-edit batch member recomputed nothing (edit not seen)")
	}
}

// TestStatsReportsArtifactTier: /v1/stats carries the artifact store's
// counters over the wire.
func TestStatsReportsArtifactTier(t *testing.T) {
	_, client := newTestServer(t, Config{})
	src := nas.SPModSource(12, 1, 2, 2)
	if _, err := client.Compile(context.Background(), dhpf.CompileRequest{Source: src, Ranks: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Compile(context.Background(), dhpf.CompileRequest{Source: editSPMod(t, src), Ranks: []int{0}}); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a := stats.Artifacts
	if a.Hits == 0 || a.Entries == 0 || a.SizeBytes == 0 {
		t.Errorf("artifact tier counters missing from /v1/stats: %+v", a)
	}
	if a.Misses == 0 {
		t.Errorf("cold compile reported no artifact misses: %+v", a)
	}
	if a.MaxBytes != 64<<20 {
		t.Errorf("default artifact budget = %d, want %d", a.MaxBytes, 64<<20)
	}
}

// TestCachedHitReportsNoPassWork: a program-cache hit did no pass work,
// so its pass stats must say "cached" (zero wall) rather than replaying
// the original compile's timings — on /v1/compile and /v1/explain both.
func TestCachedHitReportsNoPassWork(t *testing.T) {
	_, client := newTestServer(t, Config{})
	req := dhpf.CompileRequest{Source: tinySrc}

	cold, err := client.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var sawWork bool
	for _, ps := range cold.PassStats {
		if ps.Cached {
			t.Errorf("cold compile marked pass %s cached", ps.Name)
		}
		if ps.WallNS > 0 {
			sawWork = true
		}
	}
	if !sawWork {
		t.Error("cold compile reported zero wall time for every pass")
	}

	warm, err := client.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second compile not served from cache")
	}
	if len(warm.PassStats) != len(cold.PassStats) {
		t.Fatalf("warm pass stats count %d != cold %d", len(warm.PassStats), len(cold.PassStats))
	}
	for _, ps := range warm.PassStats {
		if !ps.Cached {
			t.Errorf("cache hit pass %s not marked cached", ps.Name)
		}
		if ps.WallNS != 0 {
			t.Errorf("cache hit pass %s reports %dns of synthesized work", ps.Name, ps.WallNS)
		}
	}

	expl, err := client.Explain(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !expl.Cached {
		t.Fatal("explain after compile not served from cache")
	}
	if !strings.Contains(expl.Table, "cached") {
		t.Error("explain table on a cache hit does not label passes cached")
	}
	for _, ps := range expl.PassStats {
		if !ps.Cached || ps.WallNS != 0 {
			t.Errorf("explain cache hit pass %s: cached=%v wall=%d", ps.Name, ps.Cached, ps.WallNS)
		}
	}
}
