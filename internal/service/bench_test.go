package service

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"dhpf"
	"dhpf/internal/nas"
)

// BenchmarkServiceWarmVsCold measures /v1/compile latency on the SP
// source cold (unique cache key every time) and warm (same key,
// cache-hit path), through the full HTTP round trip.  The reported
// cold_vs_warm_x metric is the paper-scale payoff of the program cache:
// a warm hit skips the whole pass pipeline and costs only routing +
// rendering (expected ≥ 10×).
func BenchmarkServiceWarmVsCold(b *testing.B) {
	srv := New(Config{Workers: 2, QueueDepth: 256, CacheBytes: 512 << 20, RequestTimeout: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := dhpf.NewClient(ts.URL)
	src := nas.SPSource(16, 1, 2, 2)
	ctx := context.Background()

	// Prime the warm entry once.
	warmReq := dhpf.CompileRequest{Source: src, Ranks: []int{0}}
	if _, err := client.Compile(ctx, warmReq); err != nil {
		b.Fatal(err)
	}

	var coldNS, warmNS int64
	seq := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coldReq := warmReq
		coldReq.Params = map[string]int{"SEED": seq} // unique key ⇒ cache miss
		seq++
		t0 := time.Now()
		if _, err := client.Compile(ctx, coldReq); err != nil {
			b.Fatal(err)
		}
		coldNS += time.Since(t0).Nanoseconds()

		t0 = time.Now()
		resp, err := client.Compile(ctx, warmReq)
		if err != nil {
			b.Fatal(err)
		}
		warmNS += time.Since(t0).Nanoseconds()
		if !resp.Cached {
			b.Fatal("warm request missed the cache")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(coldNS)/float64(b.N), "cold_ns/op")
	b.ReportMetric(float64(warmNS)/float64(b.N), "warm_ns/op")
	b.ReportMetric(float64(coldNS)/float64(warmNS), "cold_vs_warm_x")
}
