package service

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"dhpf"
	"dhpf/internal/nas"
	"dhpf/internal/store"
)

// BenchmarkServiceWarmVsCold measures /v1/compile latency on the SP
// source cold (unique cache key every time) and warm (same key,
// cache-hit path), through the full HTTP round trip.  The reported
// cold_vs_warm_x metric is the paper-scale payoff of the program cache:
// a warm hit skips the whole pass pipeline and costs only routing +
// rendering (expected ≥ 10×).
func BenchmarkServiceWarmVsCold(b *testing.B) {
	srv := New(Config{Workers: 2, QueueDepth: 256, CacheBytes: 512 << 20, RequestTimeout: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := dhpf.NewClient(ts.URL)
	src := nas.SPSource(16, 1, 2, 2)
	ctx := context.Background()

	// Prime the warm entry once.
	warmReq := dhpf.CompileRequest{Source: src, Ranks: []int{0}}
	if _, err := client.Compile(ctx, warmReq); err != nil {
		b.Fatal(err)
	}

	var coldNS, warmNS int64
	seq := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coldReq := warmReq
		coldReq.Params = map[string]int{"SEED": seq} // unique key ⇒ cache miss
		seq++
		t0 := time.Now()
		if _, err := client.Compile(ctx, coldReq); err != nil {
			b.Fatal(err)
		}
		coldNS += time.Since(t0).Nanoseconds()

		t0 = time.Now()
		resp, err := client.Compile(ctx, warmReq)
		if err != nil {
			b.Fatal(err)
		}
		warmNS += time.Since(t0).Nanoseconds()
		if !resp.Cached {
			b.Fatal("warm request missed the cache")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(coldNS)/float64(b.N), "cold_ns/op")
	b.ReportMetric(float64(warmNS)/float64(b.N), "warm_ns/op")
	b.ReportMetric(float64(coldNS)/float64(warmNS), "cold_vs_warm_x")
}

func p50ns(durs []time.Duration) float64 {
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return float64(durs[len(durs)/2].Nanoseconds())
}

// BenchmarkRestartWarmCompile measures the restart-warm path: a server
// whose program store was populated by a previous process serves its
// first request for a known fingerprint from disk.  Each iteration
// builds a fresh Server (empty in-memory tiers — the restart) over the
// same open store and times one compileOne call, which must be a
// cached, zero-pass-work hit.  Compare the p50_ns against
// BenchmarkRestartWarmCompileCold's: the ≥10× gap is the durable
// store's payoff, gated in CI by tools/benchjson -check.
func BenchmarkRestartWarmCompile(b *testing.B) {
	st, err := store.Open(filepath.Join(b.TempDir(), "dhpfd.store"), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	src := nas.SPSource(12, 1, 2, 2)
	req := dhpf.CompileRequest{Source: src, Ranks: []int{0}}
	ctx := context.Background()
	if _, err := New(Config{Store: st}).compileOne(ctx, req); err != nil {
		b.Fatal(err)
	}

	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv := New(Config{Store: st}) // the "restarted" process
		b.StartTimer()
		t0 := time.Now()
		resp, err := srv.compileOne(ctx, req)
		durs = append(durs, time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("restart-warm request missed the store")
		}
	}
	b.StopTimer()
	b.ReportMetric(p50ns(durs), "p50_ns")
}

// BenchmarkRestartWarmCompileCold is the control: the same restarted
// server shape with no store, so every iteration compiles cold.
func BenchmarkRestartWarmCompileCold(b *testing.B) {
	src := nas.SPSource(12, 1, 2, 2)
	req := dhpf.CompileRequest{Source: src, Ranks: []int{0}}
	ctx := context.Background()

	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv := New(Config{})
		b.StartTimer()
		t0 := time.Now()
		resp, err := srv.compileOne(ctx, req)
		durs = append(durs, time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		if resp.Cached {
			b.Fatal("cold request unexpectedly cached")
		}
	}
	b.StopTimer()
	b.ReportMetric(p50ns(durs), "p50_ns")
}
