// Durable program tier: the adapter between the program cache and the
// content-addressed chunk store, plus the fleet peer-fetch chain.
//
// A compiled program is persisted as one manifest keyed by its
// fingerprint, whose chunks are the rendered report, every rank's node
// program, the pass records, and (once computed) the verify report.
// Only rendered artifacts are stored — not the live IR — so a thawed
// entry serves /v1/compile, /v1/explain and /v1/verify byte-identically
// with zero pass work; /v1/run revives the entry with one live compile
// on first use (see Server.liveProgram).
//
// The Load chain on a program-cache miss is: local store → owning peer
// (consistent hash on the fingerprint, via /v1/peer/fetch) → compile
// cold.  Peer hits are installed into the local store, so a hot
// fingerprint converges to being durable on every replica that serves
// it.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dhpf"
	"dhpf/internal/store"
	"dhpf/internal/store/codec"
)

const (
	programManifestKind = "program"
	programMetaVersion  = "1"
	passesFormat        = "program.passes"
	passesVersion       = 1
	tuneManifestKind    = "tune"
	tuneMetaVersion     = "1"
)

// durable implements cache.Backing[*program] over a chunk store and an
// optional peer ring.  Either st or ring may be nil (store-only
// replicas, storeless fleet members).
type durable struct {
	st      *store.Store
	ring    *hashRing
	peers   []string
	self    int
	client  *http.Client
	timeout time.Duration

	localHits  atomic.Int64
	localMiss  atomic.Int64
	writes     atomic.Int64
	peerHits   atomic.Int64
	peerMisses atomic.Int64
	peerErrors atomic.Int64

	tuneHits   atomic.Int64
	tuneMisses atomic.Int64
	tuneWrites atomic.Int64
}

// Load is the program cache's read-through path (runs inside the
// singleflight flight, so one miss consults disk and peers once).
func (d *durable) Load(key string) (*program, int64, bool) {
	if d.st != nil {
		if ent, size, ok := d.loadLocal(key); ok {
			d.localHits.Add(1)
			return ent, size, true
		}
		d.localMiss.Add(1)
	}
	if d.ring != nil {
		if owner := d.ring.owner(key); owner != d.self {
			if ent, size, ok := d.fetchPeer(d.peers[owner], key); ok {
				d.peerHits.Add(1)
				if d.st != nil {
					d.saveEntry(key, ent) // future restarts warm locally too
				}
				return ent, size, true
			}
		}
	}
	return nil, 0, false
}

// Store is the write-through path: every freshly compiled program
// becomes durable before its waiters observe it.
func (d *durable) Store(key string, ent *program, _ int64) {
	if d.st == nil {
		return
	}
	if d.saveEntry(key, ent) {
		d.writes.Add(1)
	}
}

// saveEntry persists one cache entry as chunks + a manifest.  Called
// again after a verify or analyze report is first computed (the
// manifest gains the report's chunk; unchanged chunks dedup to no-ops).
func (d *durable) saveEntry(key string, ent *program) bool {
	ranks := ent.ranks
	refs := make([]store.ChunkRef, 0, ranks+3)
	put := func(name string, data []byte) bool {
		addr, err := d.st.PutChunk(data)
		if err != nil {
			return false
		}
		refs = append(refs, store.ChunkRef{Name: name, Addr: addr})
		return true
	}
	if !put("report", []byte(ent.report)) {
		return false
	}
	for rk := 0; rk < ranks; rk++ {
		if !put("node:"+strconv.Itoa(rk), []byte(ent.nodeProgram(rk))) {
			return false
		}
	}
	if !put("passes", encodePassStats(cachedStatsOf(ent))) {
		return false
	}
	ent.mu.Lock()
	rep := ent.verifyRep
	arep := ent.analyzeRep
	ent.mu.Unlock()
	if rep != nil {
		js, err := json.Marshal(rep)
		if err != nil || !put("verify", js) {
			return false
		}
	}
	if arep != nil {
		js, err := json.Marshal(arep)
		if err != nil || !put("analyze", js) {
			return false
		}
	}
	err := d.st.PutManifest(key, store.Manifest{
		Kind: programManifestKind,
		Meta: map[string]string{"v": programMetaVersion, "ranks": strconv.Itoa(ranks)},
		Refs: refs,
	})
	return err == nil
}

// loadTune recalls a completed tune leaderboard by its request
// fingerprint.  Tune results are small (one JSON chunk per manifest)
// but expensive to recompute — a search is many compiles plus
// simulations — so they get the same durability as compiled programs.
func (d *durable) loadTune(key string) (*dhpf.TuneResult, bool) {
	if d.st == nil {
		return nil, false
	}
	m, ok := d.st.GetManifest(key)
	if !ok || m.Kind != tuneManifestKind || m.Meta["v"] != tuneMetaVersion {
		d.tuneMisses.Add(1)
		return nil, false
	}
	for _, ref := range m.Refs {
		if ref.Name != "result" {
			continue
		}
		data, ok := d.st.GetChunk(ref.Addr)
		if !ok {
			break
		}
		var res dhpf.TuneResult
		if json.Unmarshal(data, &res) != nil {
			break
		}
		if res.Winner == nil && len(res.Entries) > 0 && res.Entries[0].Status == "ok" {
			// Re-establish the winner-points-into-entries invariant the
			// encoder flattened.
			res.Winner = &res.Entries[0]
		}
		d.tuneHits.Add(1)
		return &res, true
	}
	d.tuneMisses.Add(1)
	return nil, false
}

// saveTune persists one completed leaderboard (error outcomes are never
// stored — a failed search should re-run, not be replayed).
func (d *durable) saveTune(key string, res *dhpf.TuneResult) {
	if d.st == nil {
		return
	}
	js, err := json.Marshal(res)
	if err != nil {
		return
	}
	addr, err := d.st.PutChunk(js)
	if err != nil {
		return
	}
	err = d.st.PutManifest(key, store.Manifest{
		Kind: tuneManifestKind,
		Meta: map[string]string{"v": tuneMetaVersion},
		Refs: []store.ChunkRef{{Name: "result", Addr: addr}},
	})
	if err == nil {
		d.tuneWrites.Add(1)
	}
}

// loadLocal thaws one manifest from the local store into a cache entry
// (prog == nil: rendered artifacts only).
func (d *durable) loadLocal(key string) (*program, int64, bool) {
	m, ok := d.st.GetManifest(key)
	if !ok || m.Kind != programManifestKind || m.Meta["v"] != programMetaVersion {
		return nil, 0, false
	}
	ranks, err := strconv.Atoi(m.Meta["ranks"])
	if err != nil || ranks <= 0 {
		return nil, 0, false
	}
	chunk := func(name string) ([]byte, bool) {
		for _, ref := range m.Refs {
			if ref.Name == name {
				return d.st.GetChunk(ref.Addr)
			}
		}
		return nil, false
	}
	report, ok := chunk("report")
	if !ok {
		return nil, 0, false
	}
	nodes := make(map[int]string, ranks)
	size := int64(len(report)) + 1024
	for rk := 0; rk < ranks; rk++ {
		nd, ok := chunk("node:" + strconv.Itoa(rk))
		if !ok {
			return nil, 0, false
		}
		nodes[rk] = string(nd)
		size += int64(len(nd))
	}
	pb, ok := chunk("passes")
	if !ok {
		return nil, 0, false
	}
	stats, ok := decodePassStats(pb)
	if !ok {
		return nil, 0, false
	}
	ent := &program{ranks: ranks, report: string(report), nodes: nodes, stats: stats}
	if vb, ok := chunk("verify"); ok {
		var rep dhpf.VerifyReport
		if json.Unmarshal(vb, &rep) == nil {
			ent.verifyRep = &rep
		}
	}
	if ab, ok := chunk("analyze"); ok {
		var rep dhpf.AnalyzeReport
		if json.Unmarshal(ab, &rep) == nil {
			ent.analyzeRep = &rep
		}
	}
	return ent, size, true
}

// fetchPeer asks the fingerprint's ring owner for its stored entry.
// The owner only consults its cache and store — it never compiles — so
// a fleet-wide cold miss costs one bounded round trip before the local
// cold compile.
func (d *durable) fetchPeer(base, key string) (*program, int64, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), d.timeout)
	defer cancel()
	body, err := json.Marshal(dhpf.PeerFetchRequest{Fingerprint: key})
	if err != nil {
		d.peerErrors.Add(1)
		return nil, 0, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/peer/fetch", bytes.NewReader(body))
	if err != nil {
		d.peerErrors.Add(1)
		return nil, 0, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		d.peerErrors.Add(1)
		return nil, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		d.peerErrors.Add(1)
		return nil, 0, false
	}
	var pf dhpf.PeerFetchResponse
	if err := json.NewDecoder(resp.Body).Decode(&pf); err != nil {
		d.peerErrors.Add(1)
		return nil, 0, false
	}
	if !pf.Found || pf.Entry == nil {
		d.peerMisses.Add(1)
		return nil, 0, false
	}
	ent, size, ok := entryFromWire(pf.Entry)
	if !ok {
		d.peerErrors.Add(1)
		return nil, 0, false
	}
	return ent, size, true
}

// cachedStatsOf renders an entry's pass records in their cache-hit form
// (Cached true, zero wall time) — the form both the durable store and
// the peer wire carry, because a served entry by definition did no pass
// work for the requester.
func cachedStatsOf(ent *program) []dhpf.PassStat {
	ent.mu.Lock()
	prog, stats := ent.prog, ent.stats
	ent.mu.Unlock()
	if prog == nil {
		return stats
	}
	src := prog.PassStats()
	out := make([]dhpf.PassStat, len(src))
	for i, st := range src {
		st.Cached = true
		st.Wall = 0
		out[i] = st
	}
	return out
}

// encodePassStats serializes pass records (wall time excluded — cached
// records are zero-wall by construction).
func encodePassStats(stats []dhpf.PassStat) []byte {
	w := codec.NewWriter(passesFormat, passesVersion)
	w.Uvarint(uint64(len(stats)))
	for _, st := range stats {
		w.String(st.Name)
		w.String(st.Summary)
		w.Uvarint(uint64(len(st.Notes)))
		for _, n := range st.Notes {
			w.String(n)
		}
		w.Bool(st.Measured)
		w.Int(int(st.Msgs))
		w.Int(int(st.Bytes))
		w.Bool(st.HasDelta)
		w.Int(int(st.DeltaBytes))
	}
	return w.Bytes()
}

func decodePassStats(data []byte) ([]dhpf.PassStat, bool) {
	r, err := codec.NewReader(data, passesFormat, passesVersion)
	if err != nil {
		return nil, false
	}
	n := r.Uvarint()
	stats := make([]dhpf.PassStat, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		st := dhpf.PassStat{Name: r.String(), Summary: r.String(), Cached: true}
		nn := r.Uvarint()
		for j := uint64(0); j < nn && r.Err() == nil; j++ {
			st.Notes = append(st.Notes, r.String())
		}
		st.Measured = r.Bool()
		st.Msgs = int64(r.Int())
		st.Bytes = int64(r.Int())
		st.HasDelta = r.Bool()
		st.DeltaBytes = int64(r.Int())
		stats = append(stats, st)
	}
	if !r.Done() {
		return nil, false
	}
	return stats, true
}

// entryToWire converts a cache entry to the peer-fetch wire form (all
// ranks rendered).
func entryToWire(ent *program) *dhpf.ProgramEntryJSON {
	out := &dhpf.ProgramEntryJSON{
		Ranks:        ent.ranks,
		Report:       ent.report,
		NodePrograms: make(map[int]string, ent.ranks),
		PassStats:    dhpf.PassStatsJSON(cachedStatsOf(ent)),
	}
	for rk := 0; rk < ent.ranks; rk++ {
		out.NodePrograms[rk] = ent.nodeProgram(rk)
	}
	ent.mu.Lock()
	if ent.verifyRep != nil {
		rep := *ent.verifyRep
		out.Verify = &rep
	}
	if ent.analyzeRep != nil {
		rep := *ent.analyzeRep
		out.Analyze = &rep
	}
	ent.mu.Unlock()
	return out
}

// entryFromWire validates and converts a peer's entry into a local
// cache entry (prog == nil, like a thawed one).
func entryFromWire(e *dhpf.ProgramEntryJSON) (*program, int64, bool) {
	if e.Ranks <= 0 {
		return nil, 0, false
	}
	nodes := make(map[int]string, e.Ranks)
	size := int64(len(e.Report)) + 1024
	for rk := 0; rk < e.Ranks; rk++ {
		nd, ok := e.NodePrograms[rk]
		if !ok {
			return nil, 0, false
		}
		nodes[rk] = nd
		size += int64(len(nd))
	}
	stats := make([]dhpf.PassStat, len(e.PassStats))
	for i, st := range e.PassStats {
		stats[i] = dhpf.PassStat{
			Name:     st.Name,
			Summary:  st.Summary,
			Notes:    st.Notes,
			Measured: st.Measured,
			Msgs:     st.Msgs,
			Bytes:    st.Bytes,
			Cached:   true,
		}
		if st.DeltaBytes != nil {
			stats[i].HasDelta = true
			stats[i].DeltaBytes = *st.DeltaBytes
		}
	}
	ent := &program{ranks: e.Ranks, report: e.Report, nodes: nodes, stats: stats,
		verifyRep: e.Verify, analyzeRep: e.Analyze}
	return ent, size, true
}

// storeStats converts store counters plus the durable tier's own to the
// wire form.
func (d *durable) storeStats() *dhpf.StoreStats {
	if d.st == nil {
		return nil
	}
	st := d.st.Stats()
	return &dhpf.StoreStats{
		Chunks:         st.Chunks,
		Manifests:      st.Manifests,
		LiveBytes:      st.LiveBytes,
		DeadBytes:      st.DeadBytes,
		JournalBytes:   st.JournalBytes,
		MaxBytes:       st.MaxBytes,
		Hits:           st.Hits,
		Misses:         st.Misses,
		ChunkPuts:      st.ChunkPuts,
		DedupHits:      st.DedupHits,
		ManifestPuts:   st.ManifestPuts,
		Evictions:      st.Evictions,
		Compactions:    st.Compactions,
		TruncatedBytes: st.TruncatedBytes,
		ProgramHits:    d.localHits.Load(),
		ProgramMisses:  d.localMiss.Load(),
		ProgramWrites:  d.writes.Load(),
		TuneHits:       d.tuneHits.Load(),
		TuneMisses:     d.tuneMisses.Load(),
		TuneWrites:     d.tuneWrites.Load(),
	}
}
