package dhpf

import (
	"math"
	"strings"
	"testing"
)

const quickSrc = `
program demo
param N = 32
param P = 4
!hpf$ processors procs(P)
!hpf$ template tm(N, N)
!hpf$ align a with tm(d0, d1)
!hpf$ align b with tm(d0, d1)
!hpf$ distribute tm(*, BLOCK) onto procs

subroutine main()
  real a(0:N-1, 0:N-1)
  real b(0:N-1, 0:N-1)
  do j = 0, N-1
    do i = 0, N-1
      a(i,j) = 0.01*i + 0.02*j
    enddo
  enddo
  do j = 1, N-2
    do i = 1, N-2
      b(i,j) = 0.25*(a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
    enddo
  enddo
end
`

func TestPublicAPIRoundTrip(t *testing.T) {
	prog, err := Compile(quickSrc, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if prog.Ranks() != 4 {
		t.Fatalf("ranks = %d", prog.Ranks())
	}
	res, err := prog.Run(SP2Machine(prog.Ranks()))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunSerial(quickSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := res.Array("b")
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := ref.Array("b")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("b[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if res.Seconds() <= 0 || res.Messages() == 0 || res.Bytes() == 0 {
		t.Errorf("metrics: t=%g msgs=%d bytes=%d", res.Seconds(), res.Messages(), res.Bytes())
	}
	if len(res.RankSeconds()) != 4 {
		t.Errorf("rank times = %v", res.RankSeconds())
	}
}

func TestPublicAPIReport(t *testing.T) {
	prog, err := Compile(quickSrc, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := prog.Report()
	for _, want := range []string{"program demo", "ON_HOME b(i,j)", "read comm"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestPublicAPIParamsAndTrace(t *testing.T) {
	prog, err := Compile(quickSrc, map[string]int{"N": 24, "P": 2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := SP2Machine(prog.Ranks())
	cfg.Trace = true
	res, err := prog.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.SpaceTime("demo", 40)
	if !strings.Contains(st, "P0") || !strings.Contains(st, "P1") {
		t.Fatalf("space-time diagram malformed:\n%s", st)
	}
	data, lo, hi, err := res.Array("a")
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] != 0 || hi[0] != 23 || len(data) != 24*24 {
		t.Fatalf("bounds [%v:%v] len %d", lo, hi, len(data))
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("not a program", nil, DefaultOptions()); err == nil {
		t.Error("expected parse error")
	}
	// CYCLIC rejected by the analyses.
	cyc := `
program t
param N = 8
!hpf$ processors procs(2)
!hpf$ distribute a(CYCLIC) onto procs
subroutine main()
  real a(0:N-1)
  a(0) = 1.0
end
`
	if _, err := Compile(cyc, nil, DefaultOptions()); err == nil {
		t.Error("expected CYCLIC rejection")
	} else if !strings.Contains(err.Error(), "CYCLIC") {
		t.Errorf("error %q does not mention CYCLIC", err)
	}
}
